#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/code_kernels.h"
#include "rng/xoshiro256.h"

namespace tabsketch::core::kernels {
namespace {

// Lengths that cross every kernel boundary: sub-vector tails, exact SIMD
// widths, one-past widths, and a large size that exercises the i64 flush
// logic in the 8-bit squared-sum accumulator.
const size_t kLengths[] = {1, 2, 3, 7, 8, 15, 16, 17, 31, 32,
                           33, 64, 255, 256, 257, 1000, 4096};

std::vector<uint8_t> RandomCodes8(rng::Xoshiro256* gen, size_t k,
                                  bool extremes) {
  std::vector<uint8_t> codes(k);
  for (auto& c : codes) {
    c = static_cast<uint8_t>(gen->NextBounded(256));
  }
  if (extremes && k >= 2) {
    codes[0] = 0;
    codes[k - 1] = 255;
  }
  return codes;
}

std::vector<uint16_t> RandomCodes16(rng::Xoshiro256* gen, size_t k,
                                    bool extremes) {
  std::vector<uint16_t> codes(k);
  for (auto& c : codes) {
    c = static_cast<uint16_t>(gen->NextBounded(65536));
  }
  if (extremes && k >= 2) {
    codes[0] = 0;
    codes[k - 1] = 65535;
  }
  return codes;
}

/// Reference median via sorting: even k averages the two middle order
/// statistics, matching the documented contract of MedianOfDiffs.
double SortMedian(std::vector<uint16_t> diffs) {
  std::sort(diffs.begin(), diffs.end());
  const size_t k = diffs.size();
  if (k % 2 == 1) return static_cast<double>(diffs[k / 2]);
  return 0.5 * (static_cast<double>(diffs[k / 2 - 1]) +
                static_cast<double>(diffs[k / 2]));
}

TEST(CodeKernelsTest, DispatchReportsConsistentCapabilities) {
  // Active implies compiled-in; both are stable across calls.
  if (Avx2Active()) {
    EXPECT_TRUE(Avx2CompiledIn());
  }
  EXPECT_EQ(Avx2Active(), Avx2Active());
}

TEST(CodeKernelsTest, AbsDiff8MatchesScalarEverywhere) {
  rng::Xoshiro256 gen(101);
  for (size_t k : kLengths) {
    const auto a = RandomCodes8(&gen, k, /*extremes=*/true);
    const auto b = RandomCodes8(&gen, k, /*extremes=*/false);
    std::vector<uint16_t> dispatched;
    AbsDiff(a.data(), b.data(), k, &dispatched);
    std::vector<uint16_t> reference(k);
    scalar::AbsDiff8(a.data(), b.data(), k, reference.data());
    ASSERT_EQ(dispatched, reference) << "k=" << k;
  }
}

TEST(CodeKernelsTest, AbsDiff16MatchesScalarEverywhere) {
  rng::Xoshiro256 gen(202);
  for (size_t k : kLengths) {
    const auto a = RandomCodes16(&gen, k, /*extremes=*/true);
    const auto b = RandomCodes16(&gen, k, /*extremes=*/false);
    std::vector<uint16_t> dispatched;
    AbsDiff(a.data(), b.data(), k, &dispatched);
    std::vector<uint16_t> reference(k);
    scalar::AbsDiff16(a.data(), b.data(), k, reference.data());
    ASSERT_EQ(dispatched, reference) << "k=" << k;
  }
}

TEST(CodeKernelsTest, SumSquaredDiff8MatchesScalarAndNaive) {
  rng::Xoshiro256 gen(303);
  for (size_t k : kLengths) {
    const auto a = RandomCodes8(&gen, k, /*extremes=*/true);
    const auto b = RandomCodes8(&gen, k, /*extremes=*/true);
    uint64_t naive = 0;
    for (size_t i = 0; i < k; ++i) {
      const int64_t d = static_cast<int64_t>(a[i]) - b[i];
      naive += static_cast<uint64_t>(d * d);
    }
    EXPECT_EQ(SumSquaredDiff(a.data(), b.data(), k), naive) << "k=" << k;
    EXPECT_EQ(scalar::SumSquaredDiff8(a.data(), b.data(), k), naive)
        << "k=" << k;
  }
}

TEST(CodeKernelsTest, SumSquaredDiff16MatchesScalarAndNaive) {
  rng::Xoshiro256 gen(404);
  for (size_t k : kLengths) {
    const auto a = RandomCodes16(&gen, k, /*extremes=*/true);
    const auto b = RandomCodes16(&gen, k, /*extremes=*/true);
    uint64_t naive = 0;
    for (size_t i = 0; i < k; ++i) {
      const int64_t d = static_cast<int64_t>(a[i]) - b[i];
      naive += static_cast<uint64_t>(d * d);
    }
    EXPECT_EQ(SumSquaredDiff(a.data(), b.data(), k), naive) << "k=" << k;
    EXPECT_EQ(scalar::SumSquaredDiff16(a.data(), b.data(), k), naive)
        << "k=" << k;
  }
}

TEST(CodeKernelsTest, SumSquaredDiff16MaxMagnitudeDoesNotOverflow) {
  // 65535^2 * k at k = 4096 exceeds 2^44; any i32 intermediate would wrap.
  const size_t k = 4096;
  std::vector<uint16_t> a(k, 65535), b(k, 0);
  const uint64_t expected = uint64_t{65535} * 65535 * k;
  EXPECT_EQ(SumSquaredDiff(a.data(), b.data(), k), expected);
  EXPECT_EQ(scalar::SumSquaredDiff16(a.data(), b.data(), k), expected);
}

TEST(CodeKernelsTest, MedianOfDiffs8MatchesSortMedian) {
  rng::Xoshiro256 gen(505);
  CodeScratch scratch;
  for (size_t k : kLengths) {
    const auto a = RandomCodes8(&gen, k, /*extremes=*/true);
    const auto b = RandomCodes8(&gen, k, /*extremes=*/false);
    std::vector<uint16_t> diffs(k);
    scalar::AbsDiff8(a.data(), b.data(), k, diffs.data());
    EXPECT_EQ(MedianOfDiffs8(diffs.data(), k, &scratch), SortMedian(diffs))
        << "k=" << k;
    EXPECT_EQ(MedianAbsDiff(a.data(), b.data(), k, &scratch),
              SortMedian(diffs))
        << "k=" << k;
  }
}

TEST(CodeKernelsTest, MedianOfDiffs16MatchesSortMedian) {
  rng::Xoshiro256 gen(606);
  CodeScratch scratch;
  for (size_t k : kLengths) {
    const auto a = RandomCodes16(&gen, k, /*extremes=*/true);
    const auto b = RandomCodes16(&gen, k, /*extremes=*/false);
    std::vector<uint16_t> diffs(k);
    scalar::AbsDiff16(a.data(), b.data(), k, diffs.data());
    EXPECT_EQ(MedianOfDiffs16(diffs.data(), k, &scratch), SortMedian(diffs))
        << "k=" << k;
    EXPECT_EQ(MedianAbsDiff(a.data(), b.data(), k, &scratch),
              SortMedian(diffs))
        << "k=" << k;
  }
}

TEST(CodeKernelsTest, EvenKMedianIsExactHalfStep) {
  // Two middle order statistics 3 and 4 -> exactly 3.5, never a float
  // artifact.
  CodeScratch scratch;
  const std::vector<uint16_t> diffs = {1, 3, 4, 9};
  EXPECT_EQ(MedianOfDiffs8(diffs.data(), diffs.size(), &scratch), 3.5);
  EXPECT_EQ(MedianOfDiffs16(diffs.data(), diffs.size(), &scratch), 3.5);
}

TEST(CodeKernelsTest, ConstantAndIdenticalInputs) {
  CodeScratch scratch;
  const std::vector<uint8_t> a8(33, 200);
  const std::vector<uint16_t> a16(33, 60000);
  EXPECT_EQ(MedianAbsDiff(a8.data(), a8.data(), a8.size(), &scratch), 0.0);
  EXPECT_EQ(MedianAbsDiff(a16.data(), a16.data(), a16.size(), &scratch), 0.0);
  EXPECT_EQ(SumSquaredDiff(a8.data(), a8.data(), a8.size()), 0u);
  EXPECT_EQ(SumSquaredDiff(a16.data(), a16.data(), a16.size()), 0u);
}

TEST(CodeKernelsTest, ScratchReuseAcrossWidthsAndSizes) {
  // One scratch serving interleaved 8- and 16-bit calls of varying k must
  // never leak state between calls.
  rng::Xoshiro256 gen(707);
  CodeScratch scratch;
  for (int round = 0; round < 4; ++round) {
    for (size_t k : {size_t{5}, size_t{64}, size_t{257}}) {
      const auto a8 = RandomCodes8(&gen, k, false);
      const auto b8 = RandomCodes8(&gen, k, false);
      const auto a16 = RandomCodes16(&gen, k, false);
      const auto b16 = RandomCodes16(&gen, k, false);
      std::vector<uint16_t> d8(k), d16(k);
      scalar::AbsDiff8(a8.data(), b8.data(), k, d8.data());
      scalar::AbsDiff16(a16.data(), b16.data(), k, d16.data());
      EXPECT_EQ(MedianAbsDiff(a8.data(), b8.data(), k, &scratch),
                SortMedian(d8));
      EXPECT_EQ(MedianAbsDiff(a16.data(), b16.data(), k, &scratch),
                SortMedian(d16));
    }
  }
}

}  // namespace
}  // namespace tabsketch::core::kernels
