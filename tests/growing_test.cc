#include <gtest/gtest.h>

#include <vector>

#include "core/growing.h"
#include "core/ondemand.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomPiece(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 100.0;
  return out;
}

TEST(GrowingTest, CreateValidates) {
  SketchParams params{.p = 1.0, .k = 8, .seed = 1};
  EXPECT_FALSE(GrowingTableSketcher::Create(params, 8, 0, 4).ok());
  EXPECT_FALSE(GrowingTableSketcher::Create(params, 8, 9, 4).ok());
  EXPECT_FALSE(
      GrowingTableSketcher::Create({.p = 0.0, .k = 8, .seed = 1}, 8, 4, 4)
          .ok());
  EXPECT_TRUE(GrowingTableSketcher::Create(params, 8, 4, 4).ok());
}

TEST(GrowingTest, StartsEmpty) {
  auto growing = GrowingTableSketcher::Create({.p = 1.0, .k = 4, .seed = 1},
                                              8, 4, 4);
  ASSERT_TRUE(growing.ok());
  EXPECT_EQ(growing->num_tiles(), 0u);
  EXPECT_EQ(growing->grid_rows(), 2u);
  EXPECT_EQ(growing->grid_cols(), 0u);
  EXPECT_EQ(growing->pending_cols(), 0u);
}

TEST(GrowingTest, RejectsRowMismatch) {
  auto growing = GrowingTableSketcher::Create({.p = 1.0, .k = 4, .seed = 1},
                                              8, 4, 4);
  ASSERT_TRUE(growing.ok());
  EXPECT_FALSE(growing->AppendColumns(RandomPiece(6, 4, 1)).ok());
}

TEST(GrowingTest, PendingColumnsUntilTileCompletes) {
  auto growing = GrowingTableSketcher::Create({.p = 1.0, .k = 4, .seed = 1},
                                              8, 4, 6);
  ASSERT_TRUE(growing.ok());
  ASSERT_TRUE(growing->AppendColumns(RandomPiece(8, 4, 2)).ok());
  EXPECT_EQ(growing->num_tiles(), 0u);
  EXPECT_EQ(growing->pending_cols(), 4u);
  ASSERT_TRUE(growing->AppendColumns(RandomPiece(8, 3, 3)).ok());
  EXPECT_EQ(growing->grid_cols(), 1u);
  EXPECT_EQ(growing->num_tiles(), 2u);
  EXPECT_EQ(growing->pending_cols(), 1u);
}

TEST(GrowingTest, MatchesFromScratchSketching) {
  SketchParams params{.p = 0.5, .k = 16, .seed = 21};
  auto growing = GrowingTableSketcher::Create(params, 12, 4, 5);
  ASSERT_TRUE(growing.ok());

  // Append three uneven pieces.
  std::vector<table::Matrix> pieces = {
      RandomPiece(12, 7, 31), RandomPiece(12, 2, 32), RandomPiece(12, 11, 33)};
  for (const auto& piece : pieces) {
    ASSERT_TRUE(growing->AppendColumns(piece).ok());
  }
  // 20 columns appended -> 4 complete tile columns of width 5.
  EXPECT_EQ(growing->grid_cols(), 4u);
  EXPECT_EQ(growing->pending_cols(), 0u);
  EXPECT_EQ(growing->num_tiles(), 12u);  // 3 tile rows (12/4) x 4

  // From-scratch reference over the same final table.
  auto grid = table::TileGrid::Create(&growing->table(), 4, 5);
  ASSERT_TRUE(grid.ok());
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const std::vector<Sketch> reference = SketchAllTiles(*sketcher, *grid);
  const std::vector<Sketch> incremental = growing->SketchesInGridOrder();
  ASSERT_EQ(reference.size(), incremental.size());
  for (size_t t = 0; t < reference.size(); ++t) {
    EXPECT_EQ(reference[t].values, incremental[t].values) << "tile " << t;
  }
}

TEST(GrowingTest, NeverRecomputesASketch) {
  SketchParams params{.p = 1.0, .k = 8, .seed = 5};
  auto growing = GrowingTableSketcher::Create(params, 8, 4, 4);
  ASSERT_TRUE(growing.ok());
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(
        growing->AppendColumns(RandomPiece(8, 4, 100 + day)).ok());
  }
  // 5 tile columns x 2 tile rows = 10 tiles, each sketched exactly once.
  EXPECT_EQ(growing->num_tiles(), 10u);
  EXPECT_EQ(growing->sketches_computed(), 10u);
}

TEST(GrowingTest, TileSketchAccessorMatchesGridOrder) {
  SketchParams params{.p = 1.0, .k = 4, .seed = 5};
  auto growing = GrowingTableSketcher::Create(params, 8, 4, 4);
  ASSERT_TRUE(growing.ok());
  ASSERT_TRUE(growing->AppendColumns(RandomPiece(8, 8, 9)).ok());
  const std::vector<Sketch> flat = growing->SketchesInGridOrder();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(growing->TileSketch(0, 1).values, flat[1].values);
  EXPECT_EQ(growing->TileSketch(1, 0).values, flat[2].values);
}

TEST(GrowingTest, EmptyAppendIsNoop) {
  auto growing = GrowingTableSketcher::Create({.p = 1.0, .k = 4, .seed = 1},
                                              8, 4, 4);
  ASSERT_TRUE(growing.ok());
  ASSERT_TRUE(growing->AppendColumns(table::Matrix(8, 0)).ok());
  EXPECT_EQ(growing->num_tiles(), 0u);
}

}  // namespace
}  // namespace tabsketch::core
