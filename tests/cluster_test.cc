#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/exact_backend.h"
#include "cluster/kmeans.h"
#include "cluster/seeding.h"
#include "cluster/sketch_backend.h"
#include "eval/confusion.h"
#include "eval/quality.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::cluster {
namespace {

/// Table with `bands` horizontal bands of well-separated levels plus small
/// noise; tiled by rows, ground truth = band id.
struct BandedData {
  table::Matrix data;
  std::vector<int> truth;  // per tile, for the grid below
  size_t tile_rows, tile_cols;
};

BandedData MakeBanded(size_t bands, size_t rows_per_band, size_t cols,
                      size_t tile_rows, size_t tile_cols, uint64_t seed) {
  BandedData out;
  out.tile_rows = tile_rows;
  out.tile_cols = tile_cols;
  const size_t rows = bands * rows_per_band;
  out.data = table::Matrix(rows, cols);
  rng::Xoshiro256 gen(seed);
  for (size_t r = 0; r < rows; ++r) {
    const double level = 100.0 * static_cast<double>(1 + r / rows_per_band);
    for (size_t c = 0; c < cols; ++c) {
      out.data(r, c) = level + gen.NextDouble();
    }
  }
  const size_t grid_rows = rows / tile_rows;
  const size_t grid_cols = cols / tile_cols;
  for (size_t gr = 0; gr < grid_rows; ++gr) {
    for (size_t gc = 0; gc < grid_cols; ++gc) {
      out.truth.push_back(
          static_cast<int>((gr * tile_rows + tile_rows / 2) / rows_per_band));
    }
  }
  return out;
}

TEST(SeedingTest, RandomDistinctIndicesAreDistinctAndInRange) {
  const auto indices = RandomDistinctIndices(100, 20, 5);
  EXPECT_EQ(indices.size(), 20u);
  std::set<size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t index : indices) EXPECT_LT(index, 100u);
}

TEST(SeedingTest, RandomDistinctFullDraw) {
  const auto indices = RandomDistinctIndices(5, 5, 7);
  std::set<size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(SeedingTest, DeterministicPerSeed) {
  EXPECT_EQ(RandomDistinctIndices(50, 10, 3), RandomDistinctIndices(50, 10, 3));
  EXPECT_NE(RandomDistinctIndices(50, 10, 3), RandomDistinctIndices(50, 10, 4));
}

TEST(SeedingTest, PlusPlusSpreadsAcrossBands) {
  // With two far-apart bands, ++ seeding with k=2 should pick one tile from
  // each band essentially always.
  BandedData banded = MakeBanded(2, 8, 16, 4, 4, 11);
  auto grid = table::TileGrid::Create(&banded.data, banded.tile_rows,
                                      banded.tile_cols);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  const auto seeds = KMeansPlusPlusIndices(&*backend, 2, 9);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_NE(banded.truth[seeds[0]], banded.truth[seeds[1]]);
}

TEST(ExactBackendTest, RejectsBadP) {
  table::Matrix data(4, 4);
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  EXPECT_FALSE(ExactBackend::Create(&*grid, 0.0).ok());
  EXPECT_FALSE(ExactBackend::Create(&*grid, 2.5).ok());
}

TEST(ExactBackendTest, CentroidIsMeanOfMembers) {
  table::Matrix data(2, 4, {0, 0, 10, 10,
                            0, 0, 20, 20});
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  backend->InitCentroidsFromObjects({0});
  backend->UpdateCentroids({0, 0});
  // Mean of the two tiles: [(0+10)/2, ...] = 5/5/10/10... row0: (0+10)/2=5,
  // (0+10)/2=5; row1: (0+20)/2=10, (0+20)/2=10.
  const table::Matrix& centroid = backend->centroid(0);
  EXPECT_DOUBLE_EQ(centroid(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(centroid(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(centroid(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(centroid(1, 1), 10.0);
}

TEST(ExactBackendTest, EmptyClusterKeepsCentroid) {
  table::Matrix data(2, 4, {1, 1, 9, 9, 1, 1, 9, 9});
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  backend->InitCentroidsFromObjects({0, 1});
  const table::Matrix before = backend->centroid(1);
  backend->UpdateCentroids({0, 0});  // cluster 1 empty
  EXPECT_TRUE(backend->centroid(1) == before);
}

TEST(ExactBackendTest, DistanceCountsEvaluations) {
  table::Matrix data(2, 4);
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  backend->InitCentroidsFromObjects({0});
  EXPECT_EQ(backend->distance_evaluations(), 0u);
  backend->Distance(0, 0);
  backend->ObjectDistance(0, 1);
  EXPECT_EQ(backend->distance_evaluations(), 2u);
}

TEST(SketchBackendTest, PrecomputedSketchesAllTilesUpFront) {
  BandedData banded = MakeBanded(2, 4, 16, 4, 4, 21);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = SketchBackend::Create(&*grid, {.p = 1.0, .k = 32, .seed = 3},
                                       SketchMode::kPrecomputed);
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ(backend->sketches_computed(), grid->num_tiles());
  EXPECT_EQ(backend->name(), "sketch-precomputed");
}

TEST(SketchBackendTest, OnDemandSketchesLazily) {
  BandedData banded = MakeBanded(2, 4, 16, 4, 4, 22);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = SketchBackend::Create(&*grid, {.p = 1.0, .k = 32, .seed = 3},
                                       SketchMode::kOnDemand);
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ(backend->sketches_computed(), 0u);
  backend->ObjectDistance(0, 1);
  EXPECT_EQ(backend->sketches_computed(), 2u);
  EXPECT_EQ(backend->name(), "sketch-on-demand");
}

TEST(SketchBackendTest, CentroidSketchIsMeanOfMemberSketches) {
  BandedData banded = MakeBanded(2, 4, 16, 4, 4, 23);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = SketchBackend::Create(&*grid, {.p = 1.0, .k = 8, .seed = 3},
                                       SketchMode::kPrecomputed);
  ASSERT_TRUE(backend.ok());
  backend->InitCentroidsFromObjects({0});
  std::vector<int> assignment(grid->num_tiles(), -1);
  assignment[0] = 0;
  assignment[1] = 0;
  backend->UpdateCentroids(assignment);
  // Distance from the centroid to itself is zero only if centroid = mean of
  // sketches 0,1; check against a manual mean via ObjectDistance symmetry:
  // d(centroid, tile0) must equal d(centroid, tile1) when tiles are
  // symmetric... simpler: verify zero distance to the manual mean.
  // Reconstruct the mean sketch manually.
  auto sketcher = core::Sketcher::Create({.p = 1.0, .k = 8, .seed = 3});
  ASSERT_TRUE(sketcher.ok());
  core::Sketch mean = sketcher->SketchOf(grid->Tile(0));
  mean.Add(sketcher->SketchOf(grid->Tile(1)));
  mean.Scale(0.5);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(backend->centroid(0).values[i], mean.values[i], 1e-9);
  }
}

TEST(KMeansTest, RejectsBadK) {
  table::Matrix data(4, 4);
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  EXPECT_FALSE(RunKMeans(&*backend, {.k = 0}).ok());
  EXPECT_FALSE(RunKMeans(&*backend, {.k = 5}).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBandsExact) {
  BandedData banded = MakeBanded(3, 8, 32, 4, 4, 31);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend, {.k = 3, .max_iterations = 50,
                                      .seed = 17});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_DOUBLE_EQ(
      eval::BestMatchAgreement(banded.truth, result->assignment, 3), 1.0);
}

class KMeansSketchRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, SketchMode>> {};

TEST_P(KMeansSketchRecoveryTest, RecoversWellSeparatedBands) {
  const double p = std::get<0>(GetParam());
  const SketchMode mode = std::get<1>(GetParam());
  BandedData banded = MakeBanded(3, 8, 32, 4, 4, 37);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = SketchBackend::Create(&*grid, {.p = p, .k = 64, .seed = 5},
                                       mode);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend, {.k = 3, .max_iterations = 50,
                                      .seed = 17});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(
      eval::BestMatchAgreement(banded.truth, result->assignment, 3), 1.0)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    PsAndModes, KMeansSketchRecoveryTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(SketchMode::kPrecomputed,
                                         SketchMode::kOnDemand)));

TEST(KMeansTest, SketchAndExactClusteringsAgree) {
  BandedData banded = MakeBanded(4, 8, 32, 4, 4, 41);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto exact = ExactBackend::Create(&*grid, 1.0);
  auto sketch = SketchBackend::Create(&*grid, {.p = 1.0, .k = 64, .seed = 5},
                                      SketchMode::kPrecomputed);
  ASSERT_TRUE(exact.ok() && sketch.ok());
  KMeansOptions options{.k = 4, .max_iterations = 50, .seed = 19};
  auto exact_result = RunKMeansBestOfRestarts(&*exact, options, 3);
  auto sketch_result = RunKMeansBestOfRestarts(&*sketch, options, 3);
  ASSERT_TRUE(exact_result.ok() && sketch_result.ok());
  // The two routines may settle in different local minima; the paper's
  // claim is that the sketched clustering is *as good*, with label
  // agreement usually (not always) high. Assert quality parity strictly
  // and agreement loosely.
  const double spread_exact =
      eval::ClusteringSpread(*grid, exact_result->assignment, 4, 1.0);
  const double spread_sketch =
      eval::ClusteringSpread(*grid, sketch_result->assignment, 4, 1.0);
  EXPECT_LT(spread_sketch, 1.1 * spread_exact);
  EXPECT_GE(eval::BestMatchAgreement(exact_result->assignment,
                                     sketch_result->assignment, 4),
            0.75);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  BandedData banded = MakeBanded(2, 8, 32, 4, 4, 43);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto b1 = ExactBackend::Create(&*grid, 1.0);
  auto b2 = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(b1.ok() && b2.ok());
  KMeansOptions options{.k = 2, .max_iterations = 20, .seed = 7};
  auto r1 = RunKMeans(&*b1, options);
  auto r2 = RunKMeans(&*b2, options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->assignment, r2->assignment);
  EXPECT_EQ(r1->iterations, r2->iterations);
}

TEST(KMeansTest, EveryObjectAssigned) {
  BandedData banded = MakeBanded(2, 8, 32, 4, 4, 47);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 0.5);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend, {.k = 3, .max_iterations = 10,
                                      .seed = 23});
  ASSERT_TRUE(result.ok());
  for (int cluster : result->assignment) {
    EXPECT_GE(cluster, 0);
    EXPECT_LT(cluster, 3);
  }
}

TEST(KMeansTest, NoEmptyClustersOnDuplicateHeavyData) {
  // All tiles identical except one: k=3 forces empty-cluster revival.
  table::Matrix data(4, 16);
  data.Fill(5.0);
  data(0, 0) = 500.0;
  auto grid = table::TileGrid::Create(&data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend, {.k = 3, .max_iterations = 20,
                                      .seed = 29});
  ASSERT_TRUE(result.ok());
  // The run must terminate and assign everything.
  for (int cluster : result->assignment) EXPECT_GE(cluster, 0);
}

TEST(KMeansTest, PlusPlusSeedingWorksEndToEnd) {
  BandedData banded = MakeBanded(3, 8, 32, 4, 4, 53);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend,
                          {.k = 3, .max_iterations = 50, .seed = 31,
                           .seeding = SeedingMethod::kPlusPlus});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(
      eval::BestMatchAgreement(banded.truth, result->assignment, 3), 1.0);
}

TEST(KMeansTest, ObjectiveIsSumOfAssignedDistances) {
  BandedData banded = MakeBanded(2, 4, 16, 4, 4, 61);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend, {.k = 2, .max_iterations = 20,
                                      .seed = 41});
  ASSERT_TRUE(result.ok());
  double expected = 0.0;
  for (size_t object = 0; object < grid->num_tiles(); ++object) {
    expected += backend->Distance(
        object, static_cast<size_t>(result->assignment[object]));
  }
  EXPECT_NEAR(result->objective, expected, 1e-9);
}

TEST(KMeansTest, BestOfRestartsRejectsZero) {
  table::Matrix data(4, 4);
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  EXPECT_FALSE(RunKMeansBestOfRestarts(&*backend, {.k = 2}, 0).ok());
}

TEST(KMeansTest, BestOfRestartsNeverWorseThanFirstAttempt) {
  BandedData banded = MakeBanded(4, 8, 32, 4, 4, 67);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());

  KMeansOptions options{.k = 4, .max_iterations = 30, .seed = 5};
  auto single_backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(single_backend.ok());
  KMeansOptions first = options;
  first.seed = rng::MixSeeds(options.seed, 0);
  auto single = RunKMeans(&*single_backend, first);
  ASSERT_TRUE(single.ok());

  auto multi_backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(multi_backend.ok());
  auto multi = RunKMeansBestOfRestarts(&*multi_backend, options, 4);
  ASSERT_TRUE(multi.ok());
  EXPECT_LE(multi->objective, single->objective + 1e-9);
}

TEST(KMeansTest, BestOfRestartsAccumulatesEvaluations) {
  BandedData banded = MakeBanded(2, 4, 16, 4, 4, 71);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeansBestOfRestarts(
      &*backend, {.k = 2, .max_iterations = 10, .seed = 3}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance_evaluations, backend->distance_evaluations());
}

/// Backend whose distances to a chosen centroid (or from a chosen object)
/// are NaN — models corrupt data (e.g. tiles containing NaN cells), the
/// regression behind the out-of-bounds objective crash.
class NanBackend : public ClusteringBackend {
 public:
  /// `poison_objects`: objects whose every distance evaluates to NaN.
  NanBackend(std::vector<double> positions, std::set<size_t> poison_objects)
      : positions_(std::move(positions)),
        poison_objects_(std::move(poison_objects)) {}

  size_t num_objects() const override { return positions_.size(); }
  void InitCentroidsFromObjects(
      const std::vector<size_t>& object_indices) override {
    centroids_.clear();
    for (size_t index : object_indices) {
      centroids_.push_back(positions_[index]);
    }
  }
  size_t num_centroids() const override { return centroids_.size(); }
  double Distance(size_t object, size_t centroid) override {
    ++distance_evaluations_;
    EXPECT_LT(object, positions_.size()) << "OOB object index";
    EXPECT_LT(centroid, centroids_.size()) << "OOB centroid index";
    if (poison_objects_.count(object) > 0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return std::abs(positions_[object] - centroids_[centroid]);
  }
  double ObjectDistance(size_t a, size_t b) override {
    ++distance_evaluations_;
    return std::abs(positions_[a] - positions_[b]);
  }
  void UpdateCentroids(const std::vector<int>& assignment) override {
    std::vector<double> sums(centroids_.size(), 0.0);
    std::vector<size_t> counts(centroids_.size(), 0);
    for (size_t object = 0; object < assignment.size(); ++object) {
      if (assignment[object] < 0) continue;
      sums[static_cast<size_t>(assignment[object])] += positions_[object];
      ++counts[static_cast<size_t>(assignment[object])];
    }
    for (size_t cluster = 0; cluster < centroids_.size(); ++cluster) {
      if (counts[cluster] > 0) {
        centroids_[cluster] =
            sums[cluster] / static_cast<double>(counts[cluster]);
      }
    }
  }
  void ResetCentroidToObject(size_t centroid, size_t object) override {
    centroids_[centroid] = positions_[object];
  }
  std::string name() const override { return "nan-mock"; }

 private:
  std::vector<double> positions_;
  std::set<size_t> poison_objects_;
  std::vector<double> centroids_;
};

TEST(KMeansTest, NanDistancesDoNotCrashOrEscape) {
  // Objects 2 and 5 produce NaN against every centroid. Before the fix,
  // AssignAll left them at -1 and the objective pass cast -1 to size_t —
  // an out-of-bounds centroid index. Now: the run completes, unassigned
  // objects are skipped in the objective, and the objective is finite.
  NanBackend backend({0.0, 0.1, 10.0, 5.0, 5.2, 7.0, 0.2, 5.1}, {2, 5});
  auto result = RunKMeans(&backend, {.k = 2, .max_iterations = 10, .seed = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result->objective));
  EXPECT_EQ(result->assignment[2], -1);
  EXPECT_EQ(result->assignment[5], -1);
  for (size_t object : {0u, 1u, 3u, 4u, 6u, 7u}) {
    EXPECT_GE(result->assignment[object], 0) << "object " << object;
    EXPECT_LT(result->assignment[object], 2) << "object " << object;
  }
}

TEST(KMeansTest, AllNanDistancesStillTerminate) {
  // Every object poisoned: nothing can be assigned; the run must terminate
  // with a zero objective instead of crashing.
  NanBackend backend({1.0, 2.0, 3.0, 4.0}, {0, 1, 2, 3});
  auto result = RunKMeans(&backend, {.k = 2, .max_iterations = 5, .seed = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objective, 0.0);
  for (int cluster : result->assignment) EXPECT_EQ(cluster, -1);
}

TEST(KMeansTest, ParallelAssignmentsMatchSequential) {
  // The acceptance contract of the threaded hot loop: identical assignments
  // (and objective) for every thread count, on every backend flavor.
  BandedData banded = MakeBanded(3, 8, 32, 4, 4, 73);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());

  const auto run = [&](const char* which, size_t threads) {
    KMeansOptions options{.k = 3, .max_iterations = 30, .seed = 13,
                          .threads = threads};
    if (std::string(which) == "exact") {
      auto backend = ExactBackend::Create(&*grid, 1.0);
      EXPECT_TRUE(backend.ok());
      return RunKMeans(&*backend, options).value();
    }
    const SketchMode mode = std::string(which) == "precomputed"
                                ? SketchMode::kPrecomputed
                                : SketchMode::kOnDemand;
    auto backend = SketchBackend::Create(
        &*grid, {.p = 1.0, .k = 64, .seed = 5}, mode,
        core::EstimatorKind::kAuto, threads);
    EXPECT_TRUE(backend.ok());
    return RunKMeans(&*backend, options).value();
  };

  for (const char* which : {"exact", "precomputed", "ondemand"}) {
    const KMeansResult sequential = run(which, 1);
    for (size_t threads : {2u, 8u}) {
      const KMeansResult parallel = run(which, threads);
      EXPECT_EQ(parallel.assignment, sequential.assignment)
          << which << " threads=" << threads;
      EXPECT_EQ(parallel.iterations, sequential.iterations)
          << which << " threads=" << threads;
      EXPECT_DOUBLE_EQ(parallel.objective, sequential.objective)
          << which << " threads=" << threads;
    }
  }
}

TEST(KMeansTest, QuantPrefilterAssignmentsAreByteIdentical) {
  // The quantized code-scan prefilter may only skip centroids that provably
  // cannot win the argmin; every assignment, iteration count and objective
  // must match the unquantized backend exactly — across widths, modes,
  // thread counts and a starved LRU budget.
  BandedData banded = MakeBanded(3, 8, 32, 4, 4, 91);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());

  const auto run = [&](SketchMode mode, core::QuantKind quant, size_t threads,
                       size_t cache_bytes) {
    auto backend = SketchBackend::Create(
        &*grid, {.p = 1.0, .k = 64, .seed = 5}, mode,
        core::EstimatorKind::kAuto, threads, cache_bytes, quant);
    EXPECT_TRUE(backend.ok()) << backend.status().ToString();
    return RunKMeans(&*backend, {.k = 3, .max_iterations = 30, .seed = 13,
                                 .threads = threads})
        .value();
  };

  const KMeansResult reference =
      run(SketchMode::kPrecomputed, core::QuantKind::kOff, 1, 0);
  for (core::QuantKind quant :
       {core::QuantKind::kInt8, core::QuantKind::kInt16}) {
    for (SketchMode mode :
         {SketchMode::kPrecomputed, SketchMode::kOnDemand}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        for (size_t cache_bytes : {size_t{0}, size_t{1024}}) {
          if (mode == SketchMode::kPrecomputed && cache_bytes != 0) continue;
          const KMeansResult result = run(mode, quant, threads, cache_bytes);
          EXPECT_EQ(result.assignment, reference.assignment)
              << core::QuantKindName(quant) << " threads=" << threads
              << " cache_bytes=" << cache_bytes;
          EXPECT_EQ(result.iterations, reference.iterations);
          EXPECT_DOUBLE_EQ(result.objective, reference.objective);
        }
      }
    }
  }
}

TEST(KMeansTest, QuantPrefilterHandlesNaNDataIdentically) {
  // A tile with NaN data gets an unusable code row; the prefilter must keep
  // it an unconditional candidate and reproduce the unquantized assignment
  // (including the -1 for the all-NaN tile itself).
  BandedData banded = MakeBanded(3, 8, 32, 4, 4, 17);
  for (size_t c = 0; c < 32; ++c) {
    for (size_t r = 4; r < 8; ++r) {
      banded.data(r, c) = std::numeric_limits<double>::quiet_NaN();
    }
  }
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());

  const auto run = [&](core::QuantKind quant) {
    auto backend = SketchBackend::Create(
        &*grid, {.p = 1.0, .k = 64, .seed = 5}, SketchMode::kPrecomputed,
        core::EstimatorKind::kAuto, 1, 0, quant);
    EXPECT_TRUE(backend.ok()) << backend.status().ToString();
    return RunKMeans(&*backend, {.k = 3, .max_iterations = 20, .seed = 29})
        .value();
  };
  const KMeansResult reference = run(core::QuantKind::kOff);
  const KMeansResult quantized = run(core::QuantKind::kInt8);
  EXPECT_EQ(quantized.assignment, reference.assignment);
  EXPECT_EQ(quantized.iterations, reference.iterations);
}

TEST(KMeansTest, QuantPrefilterNeverIncreasesEvaluations) {
  BandedData banded = MakeBanded(4, 8, 32, 4, 4, 33);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  const auto evals = [&](core::QuantKind quant) {
    auto backend = SketchBackend::Create(
        &*grid, {.p = 1.0, .k = 64, .seed = 5}, SketchMode::kPrecomputed,
        core::EstimatorKind::kAuto, 1, 0, quant);
    EXPECT_TRUE(backend.ok());
    auto result = RunKMeans(&*backend, {.k = 4, .max_iterations = 30,
                                        .seed = 7});
    EXPECT_TRUE(result.ok());
    return result->distance_evaluations;
  };
  EXPECT_LE(evals(core::QuantKind::kInt16), evals(core::QuantKind::kOff));
}

TEST(KMeansTest, ReportsDistanceEvaluations) {
  BandedData banded = MakeBanded(2, 4, 16, 4, 4, 59);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMeans(&*backend, {.k = 2, .max_iterations = 10,
                                      .seed = 37});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->distance_evaluations, 0u);
  EXPECT_EQ(result->distance_evaluations, backend->distance_evaluations());
}

}  // namespace
}  // namespace tabsketch::cluster
