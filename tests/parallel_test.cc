#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/ondemand.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"
#include "util/parallel.h"

namespace tabsketch::util {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> counts(100);
    ParallelFor(100, threads, [&](size_t i) { counts[i]++; });
    for (const auto& count : counts) {
      EXPECT_EQ(count.load(), 1) << "threads=" << threads;
    }
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool touched = false;
  ParallelFor(0, 4, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> counts(3);
  ParallelFor(3, 16, [&](size_t i) { counts[i]++; });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, SumMatchesSequential) {
  constexpr size_t kN = 1000;
  std::vector<long> values(kN);
  ParallelFor(kN, 4, [&](size_t i) { values[i] = static_cast<long>(i * i); });
  long expected = 0;
  for (size_t i = 0; i < kN; ++i) expected += static_cast<long>(i * i);
  EXPECT_EQ(std::accumulate(values.begin(), values.end(), 0L), expected);
}

TEST(DefaultThreadCountTest, AtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ParallelForTest, WorkerExceptionIsRethrownOnCaller) {
  // An exception thrown on a worker thread used to hit std::terminate; it
  // must surface on the calling thread instead.
  EXPECT_THROW(
      ParallelFor(100, 4,
                  [](size_t i) {
                    if (i == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, WorkerExceptionKeepsMessage) {
  try {
    ParallelFor(8, 4, [](size_t i) {
      if (i == 3) throw std::runtime_error("item 3 failed");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "item 3 failed");
  }
}

TEST(ParallelForTest, InlineExceptionStillPropagates) {
  // threads <= 1 runs inline; the exception path must behave the same.
  EXPECT_THROW(ParallelFor(4, 1,
                           [](size_t i) {
                             if (i == 2) throw std::logic_error("inline");
                           }),
               std::logic_error);
}

TEST(ParallelForTest, AllWorkersThrowingRethrowsExactlyOne) {
  try {
    ParallelFor(16, 8, [](size_t) { throw std::runtime_error("all"); });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "all");
  }
}

TEST(ParallelSketchTest, MatchesSequentialForAnyThreadCount) {
  rng::Xoshiro256 gen(7);
  table::Matrix data(16, 32);
  for (double& value : data.Values()) value = gen.NextDouble();
  auto grid = table::TileGrid::Create(&data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto sketcher = core::Sketcher::Create({.p = 1.0, .k = 16, .seed = 5});
  ASSERT_TRUE(sketcher.ok());

  const std::vector<core::Sketch> sequential =
      core::SketchAllTiles(*sketcher, *grid);
  for (size_t threads : {1u, 2u, 4u}) {
    const std::vector<core::Sketch> parallel =
        core::SketchAllTilesParallel(*sketcher, *grid, threads);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t t = 0; t < sequential.size(); ++t) {
      EXPECT_EQ(parallel[t].values, sequential[t].values)
          << "threads=" << threads << " tile=" << t;
    }
  }
}

}  // namespace
}  // namespace tabsketch::util
