// Unit and concurrency tests for the observability layer: counter / gauge /
// histogram semantics, registry pointer stability, the N-thread counter
// hammer the tsan preset leans on, scoped spans, the runtime enable gate,
// and the JSON dump's shape.

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tabsketch {
namespace {

using ::tabsketch::testing::JsonChecker;
using util::Counter;
using util::Gauge;
using util::Histogram;
using util::MetricsRegistry;
using util::ScopedSpan;

/// Restores the global enable flag and wipes the global registry's values on
/// scope exit, so tests can flip the flag without leaking state into each
/// other (tests in one binary share the process-wide singleton).
class GlobalMetricsGuard {
 public:
  GlobalMetricsGuard() : was_enabled_(MetricsRegistry::Enabled()) {}
  ~GlobalMetricsGuard() {
    MetricsRegistry::SetEnabled(was_enabled_);
    MetricsRegistry::Global().ResetValues();
  }

 private:
  bool was_enabled_;
};

TEST(MetricsCounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsGaugeTest, SetAddReset) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsHistogramTest, CountSumMinMax) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5), 0.0);

  histogram.Observe(0.25);
  histogram.Observe(1.0);
  histogram.Observe(0.03125);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.28125);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.03125);
  EXPECT_DOUBLE_EQ(histogram.max(), 1.0);

  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(MetricsHistogramTest, PercentilesBracketTheDistribution) {
  Histogram histogram;
  // 90 fast observations (~1 ms bucket) and 10 slow ones (~1 s bucket).
  for (int i = 0; i < 90; ++i) histogram.Observe(1e-3);
  for (int i = 0; i < 10; ++i) histogram.Observe(1.0);

  // Log2 buckets give factor-2 resolution: the p50 must land within a factor
  // of two of the fast mode and the p99 within a factor of two of the slow
  // mode.
  const double p50 = histogram.Percentile(0.5);
  const double p99 = histogram.Percentile(0.99);
  EXPECT_GE(p50, 0.5e-3);
  EXPECT_LE(p50, 2e-3);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 2.0);
  EXPECT_LE(histogram.Percentile(0.1), p50);
  EXPECT_LE(p50, p99);
  // Quantiles never leave the observed range.
  EXPECT_GE(histogram.Percentile(0.0), histogram.min());
  EXPECT_LE(histogram.Percentile(1.0), histogram.max());
}

TEST(MetricsHistogramTest, SingleSampleReportsItself) {
  Histogram histogram;
  histogram.Observe(0.007);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.007);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.007);
  // With one sample, clamping to [min, max] makes every quantile exact.
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5), 0.007);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.99), 0.007);
}

TEST(MetricsHistogramTest, IgnoresNanKeepsNegativeAndZeroInUnderflow) {
  Histogram histogram;
  histogram.Observe(std::nan(""));
  EXPECT_EQ(histogram.count(), 0u);
  histogram.Observe(0.0);
  histogram.Observe(-1.0);  // clock skew defense: still counted, bucket 0
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.min(), -1.0);
}

TEST(MetricsRegistryTest, LookupsReturnStablePointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("a.counter");
  Gauge* gauge = registry.GetGauge("a.gauge");
  Histogram* histogram = registry.GetHistogram("a.histogram");
  // Same name -> same object; the macros rely on this to cache pointers.
  EXPECT_EQ(registry.GetCounter("a.counter"), counter);
  EXPECT_EQ(registry.GetGauge("a.gauge"), gauge);
  EXPECT_EQ(registry.GetHistogram("a.histogram"), histogram);
  // Names are namespaced per metric kind.
  EXPECT_NE(registry.GetCounter("other"), counter);

  counter->Increment(7);
  gauge->Set(3.0);
  histogram->Observe(0.5);
  registry.ResetValues();
  // Values are gone, the objects (and cached pointers) are not.
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(registry.GetCounter("a.counter"), counter);
}

TEST(MetricsRegistryTest, ConcurrentCounterHammerIsExact) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrementsPerThread = 20000;
  Counter* shared = registry.GetCounter("hammer.shared");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, shared, t] {
      // Half the traffic goes through fresh lookups to also hammer the
      // registry's map+mutex path concurrently with pure increments.
      Counter* mine = registry.GetCounter("hammer.per_thread." +
                                          std::to_string(t % 2));
      for (size_t i = 0; i < kIncrementsPerThread; ++i) {
        shared->Increment();
        mine->Increment();
        registry.GetHistogram("hammer.histogram")->Observe(1e-6);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(shared->value(), kThreads * kIncrementsPerThread);
  const uint64_t per_thread_total =
      registry.GetCounter("hammer.per_thread.0")->value() +
      registry.GetCounter("hammer.per_thread.1")->value();
  EXPECT_EQ(per_thread_total, kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.GetHistogram("hammer.histogram")->count(),
            kThreads * kIncrementsPerThread);
}

TEST(MetricsRegistryTest, EnableFlagGatesTheMacros) {
  GlobalMetricsGuard guard;
  MetricsRegistry::SetEnabled(false);
  TABSKETCH_METRIC_COUNT("gate.test.counter");
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("gate.test.counter")->value(),
            0u);

  MetricsRegistry::SetEnabled(true);
  TABSKETCH_METRIC_COUNT("gate.test.counter");
  TABSKETCH_METRIC_COUNT_N("gate.test.counter", 2);
  TABSKETCH_METRIC_GAUGE_SET("gate.test.gauge", 5);
  TABSKETCH_METRIC_OBSERVE("gate.test.histogram", 0.125);
#if TABSKETCH_METRICS_ENABLED
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("gate.test.counter")->value(),
            3u);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("gate.test.gauge")->value(), 5.0);
  EXPECT_EQ(
      MetricsRegistry::Global().GetHistogram("gate.test.histogram")->count(),
      1u);
#else
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("gate.test.counter")->value(),
            0u);
#endif
}

TEST(MetricsTraceTest, ScopedSpanRecordsElapsedSeconds) {
  MetricsRegistry registry;
  {
    ScopedSpan span("unit", &registry);
  }
  Histogram* histogram = registry.GetHistogram("span.unit.seconds");
  EXPECT_EQ(histogram->count(), 1u);
  EXPECT_GE(histogram->sum(), 0.0);

  // Stop() is explicit and idempotent.
  ScopedSpan span("unit", &registry);
  EXPECT_GE(span.Stop(), 0.0);
  EXPECT_DOUBLE_EQ(span.Stop(), 0.0);
  EXPECT_EQ(histogram->count(), 2u);
}

TEST(MetricsTraceTest, SpanAgainstGlobalRespectsEnableFlag) {
  GlobalMetricsGuard guard;
  MetricsRegistry::Global().GetHistogram("span.global_gate.seconds")->Reset();
  MetricsRegistry::SetEnabled(false);
  {
    TABSKETCH_TRACE_SPAN("global_gate");
  }
  EXPECT_EQ(MetricsRegistry::Global()
                .GetHistogram("span.global_gate.seconds")
                ->count(),
            0u);
  MetricsRegistry::SetEnabled(true);
  {
    TABSKETCH_TRACE_SPAN("global_gate");
  }
#if TABSKETCH_METRICS_ENABLED
  EXPECT_EQ(MetricsRegistry::Global()
                .GetHistogram("span.global_gate.seconds")
                ->count(),
            1u);
#endif
}

TEST(MetricsJsonTest, DumpIsValidJsonWithDocumentedShape) {
  MetricsRegistry registry;
  util::PreregisterCoreMetrics(&registry);
  registry.GetCounter("cluster.distance_evals.sketch")->Increment(123);
  registry.GetGauge("cluster.kmeans.iterations")->Set(7);
  registry.GetHistogram("span.cluster.assign.seconds")->Observe(0.004);
  registry.GetHistogram("span.cluster.assign.seconds")->Observe(0.008);

  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"tabsketch-metrics-v1\""),
            std::string::npos);
  // The documented key set survives into the dump even at value zero.
  for (const char* key :
       {"fft.plan.constructions", "fft.correlate.calls",
        "sketcher.sketch_of.calls", "estimator.estimate.calls",
        "ondemand.cache.hits", "ondemand.cache.misses",
        "ondemand.cache.evictions", "cluster.distance_evals.exact",
        "cluster.distance_evals.sketch", "pool.build.canonical_sizes",
        "span.fft.correlate.seconds", "span.pool.build.seconds",
        "span.cluster.assign.seconds", "span.cluster.update.seconds"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing documented key " << key;
  }
  EXPECT_NE(json.find("\"cluster.distance_evals.sketch\": 123"),
            std::string::npos);
  // Histogram entries carry the documented summary fields.
  for (const char* field :
       {"\"count\"", "\"sum\"", "\"min\"", "\"max\"", "\"p50\"", "\"p90\"",
        "\"p99\""}) {
    EXPECT_NE(json.find(field), std::string::npos);
  }
}

TEST(MetricsJsonTest, EmptyRegistryStillValid) {
  MetricsRegistry registry;
  std::ostringstream os;
  registry.WriteJson(os);
  EXPECT_TRUE(JsonChecker::Valid(os.str())) << os.str();
}

TEST(MetricsJsonTest, EscapesAwkwardMetricNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\ncontrol")->Increment();
  std::ostringstream os;
  registry.WriteJson(os);
  EXPECT_TRUE(JsonChecker::Valid(os.str())) << os.str();
}

}  // namespace
}  // namespace tabsketch
