#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

TEST(EstimatorTest, AutoResolvesToL2ForPTwo) {
  auto estimator = DistanceEstimator::Create({.p = 2.0, .k = 16, .seed = 1});
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator->kind(), EstimatorKind::kL2);
  EXPECT_DOUBLE_EQ(estimator->scale(), 1.0);
}

TEST(EstimatorTest, AutoResolvesToMedianOtherwise) {
  auto estimator = DistanceEstimator::Create({.p = 1.0, .k = 16, .seed = 1});
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator->kind(), EstimatorKind::kMedian);
  EXPECT_DOUBLE_EQ(estimator->scale(), 1.0);  // B(1) = 1
}

TEST(EstimatorTest, L2KindRejectedForOtherP) {
  auto estimator = DistanceEstimator::Create({.p = 1.0, .k = 16, .seed = 1},
                                             EstimatorKind::kL2);
  EXPECT_FALSE(estimator.ok());
  EXPECT_EQ(estimator.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(EstimatorTest, MedianKindAllowedForPTwo) {
  auto estimator = DistanceEstimator::Create({.p = 2.0, .k = 16, .seed = 1},
                                             EstimatorKind::kMedian);
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator->kind(), EstimatorKind::kMedian);
  EXPECT_NEAR(estimator->scale(), 0.6744897501960817, 1e-12);
}

TEST(EstimatorTest, RejectsInvalidParams) {
  EXPECT_FALSE(DistanceEstimator::Create({.p = 3.0, .k = 16, .seed = 1}).ok());
  EXPECT_FALSE(DistanceEstimator::Create({.p = 1.0, .k = 0, .seed = 1}).ok());
}

TEST(EstimatorTest, L2EstimateHandComputed) {
  auto estimator = DistanceEstimator::Create({.p = 2.0, .k = 4, .seed = 1});
  ASSERT_TRUE(estimator.ok());
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 0.0};
  // ||a-b||_2 / sqrt(4) = 4 / 2 = 2.
  EXPECT_DOUBLE_EQ(estimator->Estimate(a, b), 2.0);
}

TEST(EstimatorTest, MedianEstimateHandComputed) {
  auto estimator = DistanceEstimator::Create({.p = 1.0, .k = 3, .seed = 1});
  ASSERT_TRUE(estimator.ok());
  const std::vector<double> a = {5.0, 0.0, 2.0};
  const std::vector<double> b = {1.0, 1.0, 0.0};
  // |diffs| = {4, 1, 2}; median = 2; B(1) = 1.
  EXPECT_DOUBLE_EQ(estimator->Estimate(a, b), 2.0);
}

TEST(EstimatorTest, IdenticalSketchesGiveZero) {
  for (double p : {0.5, 1.0, 2.0}) {
    auto estimator = DistanceEstimator::Create({.p = p, .k = 8, .seed = 1});
    ASSERT_TRUE(estimator.ok());
    const std::vector<double> a = {1.0, -2.0, 3.5, 0.0, 9.0, -1.0, 4.0, 2.0};
    EXPECT_DOUBLE_EQ(estimator->Estimate(a, a), 0.0) << "p=" << p;
  }
}

TEST(EstimatorTest, ScratchReuseMatchesFreshScratch) {
  auto estimator = DistanceEstimator::Create({.p = 0.5, .k = 64, .seed = 3});
  ASSERT_TRUE(estimator.ok());
  rng::Xoshiro256 gen(9);
  std::vector<double> scratch;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> a(64), b(64);
    for (auto& v : a) v = gen.NextDouble();
    for (auto& v : b) v = gen.NextDouble();
    EXPECT_DOUBLE_EQ(estimator->EstimateWithScratch(a, b, &scratch),
                     estimator->Estimate(a, b));
  }
}

TEST(EstimatorTest, L2AndMedianAgreeOnPTwoSketches) {
  // Both estimators are consistent for p=2; with a large k they should land
  // near each other and near the exact distance.
  SketchParams params{.p = 2.0, .k = 600, .seed = 77};
  auto sketcher = Sketcher::Create(params);
  auto l2 = DistanceEstimator::Create(params, EstimatorKind::kL2);
  auto median = DistanceEstimator::Create(params, EstimatorKind::kMedian);
  ASSERT_TRUE(sketcher.ok() && l2.ok() && median.ok());

  rng::Xoshiro256 gen(5);
  table::Matrix x(8, 8), y(8, 8);
  for (double& v : x.Values()) v = gen.NextDouble() * 10.0;
  for (double& v : y.Values()) v = gen.NextDouble() * 10.0;
  const double exact = LpDistance(x.View(), y.View(), 2.0);
  const Sketch sx = sketcher->SketchOf(x.View());
  const Sketch sy = sketcher->SketchOf(y.View());
  EXPECT_NEAR(l2->Estimate(sx, sy) / exact, 1.0, 0.15);
  EXPECT_NEAR(median->Estimate(sx, sy) / exact, 1.0, 0.15);
}

TEST(EstimatorDeathTest, MismatchedSketchSizesAbort) {
  auto estimator = DistanceEstimator::Create({.p = 1.0, .k = 4, .seed = 1});
  ASSERT_TRUE(estimator.ok());
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DEATH(estimator->Estimate(a, b), "mismatched");
}

}  // namespace
}  // namespace tabsketch::core
