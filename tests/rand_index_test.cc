#include <gtest/gtest.h>

#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "eval/rand_index.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/normal.h"

namespace tabsketch {
namespace {

using eval::AdjustedRandIndex;
using eval::RandIndex;

TEST(RandIndexTest, IdenticalClusterings) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(RandIndex(a, a), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(RandIndexTest, LabelPermutationInvariant) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(RandIndexTest, HandComputedExample) {
  // a: {0,1}{2,3}; b: {0,1,2}{3}. Pairs: (01) together/together agree,
  // (23) together/apart disagree, (02),(12) apart/together disagree,
  // (03),(13) apart/apart agree. Agreements 3 of 6.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 0.5);
}

TEST(RandIndexTest, SkipsUnassigned) {
  const std::vector<int> a = {0, 0, 1, 1, -1};
  const std::vector<int> b = {0, 0, 1, 1, 0};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 1.0);
}

TEST(RandIndexTest, AdjustedNearZeroForIndependentClusterings) {
  rng::Xoshiro256 gen(7);
  std::vector<int> a(600), b(600);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(gen.NextBounded(4));
    b[i] = static_cast<int>(gen.NextBounded(4));
  }
  // The plain Rand index of independent clusterings is far above 0...
  EXPECT_GT(RandIndex(a, b), 0.5);
  // ...while the adjusted index is ~0.
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.05);
}

TEST(RandIndexTest, AdjustedDetectsPartialStructure) {
  // b equals a with a quarter of the labels randomized: ARI should sit
  // clearly between 0 and 1.
  rng::Xoshiro256 gen(11);
  std::vector<int> a(400), b(400);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(gen.NextBounded(4));
    b[i] = (i % 4 == 0) ? static_cast<int>(gen.NextBounded(4)) : a[i];
  }
  const double ari = AdjustedRandIndex(a, b);
  EXPECT_GT(ari, 0.4);
  EXPECT_LT(ari, 0.95);
}

TEST(RandIndexTest, DegenerateSingleClusterConvention) {
  const std::vector<int> a = {0, 0, 0};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(util::InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(util::InverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(util::InverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(util::InverseNormalCdf(0.84134474), 1.0, 1e-5);
  EXPECT_NEAR(util::InverseNormalCdf(0.999), 3.090232306, 1e-6);
}

TEST(InverseNormalCdfTest, SymmetryAndMonotonicity) {
  for (double q : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(util::InverseNormalCdf(q), -util::InverseNormalCdf(1.0 - q),
                1e-9);
  }
  double previous = util::InverseNormalCdf(0.001);
  for (double q = 0.01; q < 1.0; q += 0.01) {
    const double value = util::InverseNormalCdf(q);
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST(EstimateIntervalTest, ContainsEstimateAndOrdersBounds) {
  for (double p : {0.5, 1.0, 2.0}) {
    core::SketchParams params{.p = p, .k = 256, .seed = 3};
    auto sketcher = core::Sketcher::Create(params);
    auto estimator = core::DistanceEstimator::Create(params);
    ASSERT_TRUE(sketcher.ok() && estimator.ok());
    rng::Xoshiro256 gen(5);
    table::Matrix x(8, 8), y(8, 8);
    for (double& v : x.Values()) v = gen.NextDouble();
    for (double& v : y.Values()) v = gen.NextDouble();
    const core::Sketch sx = sketcher->SketchOf(x.View());
    const core::Sketch sy = sketcher->SketchOf(y.View());
    std::vector<double> scratch;
    const auto interval = estimator->EstimateWithInterval(
        sx.values, sy.values, 0.95, &scratch);
    EXPECT_LE(interval.lower, interval.estimate) << "p=" << p;
    EXPECT_LE(interval.estimate, interval.upper) << "p=" << p;
    EXPECT_GT(interval.lower, 0.0) << "p=" << p;
  }
}

TEST(EstimateIntervalTest, WiderAtHigherConfidence) {
  core::SketchParams params{.p = 1.0, .k = 256, .seed = 3};
  auto sketcher = core::Sketcher::Create(params);
  auto estimator = core::DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  rng::Xoshiro256 gen(9);
  table::Matrix x(8, 8), y(8, 8);
  for (double& v : x.Values()) v = gen.NextDouble();
  for (double& v : y.Values()) v = gen.NextDouble();
  const core::Sketch sx = sketcher->SketchOf(x.View());
  const core::Sketch sy = sketcher->SketchOf(y.View());
  std::vector<double> scratch;
  const auto narrow =
      estimator->EstimateWithInterval(sx.values, sy.values, 0.80, &scratch);
  const auto wide =
      estimator->EstimateWithInterval(sx.values, sy.values, 0.99, &scratch);
  EXPECT_LE(wide.lower, narrow.lower);
  EXPECT_GE(wide.upper, narrow.upper);
}

class IntervalCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(IntervalCoverageTest, TrueDistanceCoveredAtNominalRate) {
  const double p = GetParam();
  rng::Xoshiro256 gen(21);
  table::Matrix x(10, 10), y(10, 10);
  for (double& v : x.Values()) v = gen.NextDouble() * 50.0;
  for (double& v : y.Values()) v = gen.NextDouble() * 50.0;
  const double exact = core::LpDistance(x.View(), y.View(), p);

  constexpr int kTrials = 120;
  int covered = 0;
  std::vector<double> scratch;
  for (int trial = 0; trial < kTrials; ++trial) {
    core::SketchParams params{.p = p, .k = 300,
                              .seed = 5000 + static_cast<uint64_t>(trial)};
    auto sketcher = core::Sketcher::Create(params);
    auto estimator = core::DistanceEstimator::Create(params);
    ASSERT_TRUE(sketcher.ok() && estimator.ok());
    const auto interval = estimator->EstimateWithInterval(
        sketcher->SketchOf(x.View()).values,
        sketcher->SketchOf(y.View()).values, 0.95, &scratch);
    if (exact >= interval.lower && exact <= interval.upper) ++covered;
  }
  // 95% nominal; allow binomial noise and the asymptotic approximations.
  EXPECT_GE(static_cast<double>(covered) / kTrials, 0.88) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, IntervalCoverageTest,
                         ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace tabsketch
