#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <utility>
#include <vector>

#include "fft/complex_fft.h"
#include "fft/correlate.h"
#include "fft/fft2d.h"
#include "fft/twiddle.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/parallel.h"

namespace tabsketch::fft {
namespace {

using Complex = std::complex<double>;

table::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 2.0 - 1.0;
  return out;
}

TEST(NextPowerOfTwoTest, KnownValues) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(IsPowerOfTwoTest, KnownValues) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(96));
}

TEST(ComplexFftTest, SizeOneIsIdentity) {
  std::vector<Complex> data = {Complex(3.0, -2.0)};
  Forward(data);
  EXPECT_DOUBLE_EQ(data[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(data[0].imag(), -2.0);
}

TEST(ComplexFftTest, DeltaTransformsToAllOnes) {
  std::vector<Complex> data(8, Complex(0.0, 0.0));
  data[0] = Complex(1.0, 0.0);
  Forward(data);
  for (const auto& value : data) {
    EXPECT_NEAR(value.real(), 1.0, 1e-12);
    EXPECT_NEAR(value.imag(), 0.0, 1e-12);
  }
}

TEST(ComplexFftTest, ConstantTransformsToScaledDelta) {
  std::vector<Complex> data(8, Complex(1.0, 0.0));
  Forward(data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
  }
}

TEST(ComplexFftTest, MatchesDirectDftOnSmallInput) {
  rng::Xoshiro256 gen(5);
  constexpr size_t kN = 16;
  std::vector<Complex> data(kN);
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
  }
  std::vector<Complex> expected(kN);
  for (size_t k = 0; k < kN; ++k) {
    Complex acc(0.0, 0.0);
    for (size_t n = 0; n < kN; ++n) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * n) / kN;
      acc += data[n] * Complex(std::cos(angle), std::sin(angle));
    }
    expected[k] = acc;
  }
  Forward(data);
  for (size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-10);
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-10);
  }
}

/// Naive O(n^2) DFT reference; the k*t product is reduced mod n before the
/// angle so the reference itself stays accurate at the larger lengths.
std::vector<Complex> NaiveDft(const std::vector<Complex>& in) {
  const size_t n = in.size();
  std::vector<Complex> out(n);
  for (size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * M_PI * static_cast<double>((k * t) % n) / static_cast<double>(n);
      acc += in[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

/// The twiddle-table transform against the naive reference, every
/// power-of-two length up to 2^10.
class TwiddleTableDftTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TwiddleTableDftTest, MatchesNaiveDftReference) {
  const size_t n = GetParam();
  rng::Xoshiro256 gen(7 * n + 1);
  std::vector<Complex> data(n);
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
  }
  const std::vector<Complex> expected = NaiveDft(data);
  Forward(data);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-9) << "n=" << n;
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPowersOfTwoTo1024, TwiddleTableDftTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512, 1024));

TEST(TwiddleTableTest, TablesAreCachedAndStable) {
  const FftTables& first = TablesFor(64);
  const FftTables& second = TablesFor(64);
  EXPECT_EQ(&first, &second) << "same length must reuse one table";
  EXPECT_EQ(first.n, 64u);
  ASSERT_EQ(first.twiddles.size(), 32u);
  ASSERT_EQ(first.bit_reverse.size(), 64u);
  // Spot values: w^0 = 1, w^16 = exp(-i*pi/2) = -i; reversing 1 over 6 bits
  // gives 0b100000.
  EXPECT_DOUBLE_EQ(first.twiddles[0].real(), 1.0);
  EXPECT_NEAR(first.twiddles[16].real(), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(first.twiddles[16].imag(), -1.0);
  EXPECT_EQ(first.bit_reverse[0], 0u);
  EXPECT_EQ(first.bit_reverse[1], 32u);
  EXPECT_GE(CachedTableLengths(), 1u);
}

class FftRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftRoundTripTest, ForwardThenInverseIsIdentity) {
  const size_t n = GetParam();
  rng::Xoshiro256 gen(n);
  std::vector<Complex> data(n);
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
  }
  const std::vector<Complex> original = data;
  Forward(data);
  Inverse(data);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024, 4096));

TEST(ComplexFftTest, ParsevalEnergyConservation) {
  constexpr size_t kN = 512;
  rng::Xoshiro256 gen(77);
  std::vector<Complex> data(kN);
  double time_energy = 0.0;
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, 0.0);
    time_energy += std::norm(value);
  }
  Forward(data);
  double freq_energy = 0.0;
  for (const auto& value : data) freq_energy += std::norm(value);
  EXPECT_NEAR(freq_energy / static_cast<double>(kN), time_energy, 1e-9);
}

TEST(Fft2dTest, RoundTrip) {
  constexpr size_t kRows = 16;
  constexpr size_t kCols = 32;
  rng::Xoshiro256 gen(88);
  ComplexGrid grid(kRows, kCols);
  std::vector<Complex> original;
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kCols; ++c) {
      grid.At(r, c) = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
      original.push_back(grid.At(r, c));
    }
  }
  Forward2D(&grid);
  Inverse2D(&grid);
  size_t index = 0;
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kCols; ++c, ++index) {
      EXPECT_NEAR(grid.At(r, c).real(), original[index].real(), 1e-10);
      EXPECT_NEAR(grid.At(r, c).imag(), original[index].imag(), 1e-10);
    }
  }
}

TEST(Fft2dTest, SeparabilityMatchesDirect2dDft) {
  // A rank-1 grid outer(u, v) has FFT outer(FFT(u), FFT(v)).
  constexpr size_t kN = 8;
  rng::Xoshiro256 gen(99);
  std::vector<Complex> u(kN), v(kN);
  for (auto& value : u) value = Complex(gen.NextDouble(), 0.0);
  for (auto& value : v) value = Complex(gen.NextDouble(), 0.0);

  ComplexGrid grid(kN, kN);
  for (size_t r = 0; r < kN; ++r) {
    for (size_t c = 0; c < kN; ++c) grid.At(r, c) = u[r] * v[c];
  }
  Forward2D(&grid);

  std::vector<Complex> fu = u;
  std::vector<Complex> fv = v;
  Forward(fu);
  Forward(fv);
  for (size_t r = 0; r < kN; ++r) {
    for (size_t c = 0; c < kN; ++c) {
      const Complex expected = fu[r] * fv[c];
      EXPECT_NEAR(grid.At(r, c).real(), expected.real(), 1e-9);
      EXPECT_NEAR(grid.At(r, c).imag(), expected.imag(), 1e-9);
    }
  }
}

TEST(CrossCorrelateNaiveTest, HandComputedExample) {
  table::Matrix data(2, 3, {1, 2, 3,
                            4, 5, 6});
  table::Matrix kernel(1, 2, {1, 10});
  // Valid positions: 2 rows x 2 cols.
  table::Matrix out = CrossCorrelateNaive(data, kernel);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out(0, 0), 1 + 20);
  EXPECT_DOUBLE_EQ(out(0, 1), 2 + 30);
  EXPECT_DOUBLE_EQ(out(1, 0), 4 + 50);
  EXPECT_DOUBLE_EQ(out(1, 1), 5 + 60);
}

TEST(CrossCorrelateNaiveTest, KernelSameSizeAsDataGivesDotProduct) {
  table::Matrix data(2, 2, {1, 2, 3, 4});
  table::Matrix kernel(2, 2, {5, 6, 7, 8});
  table::Matrix out = CrossCorrelateNaive(data, kernel);
  ASSERT_EQ(out.rows(), 1u);
  ASSERT_EQ(out.cols(), 1u);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0 + 12.0 + 21.0 + 32.0);
}

struct XCorrCase {
  size_t data_rows, data_cols, kernel_rows, kernel_cols;
};

class CorrelationPlanTest : public ::testing::TestWithParam<XCorrCase> {};

TEST_P(CorrelationPlanTest, FftMatchesNaive) {
  const XCorrCase c = GetParam();
  const table::Matrix data = RandomMatrix(c.data_rows, c.data_cols, 1234);
  const table::Matrix kernel =
      RandomMatrix(c.kernel_rows, c.kernel_cols, 5678);

  const table::Matrix naive = CrossCorrelateNaive(data, kernel);
  CorrelationPlan plan(data);
  const table::Matrix fast = plan.Correlate(kernel);

  ASSERT_EQ(naive.rows(), fast.rows());
  ASSERT_EQ(naive.cols(), fast.cols());
  for (size_t i = 0; i < naive.rows(); ++i) {
    for (size_t j = 0; j < naive.cols(); ++j) {
      EXPECT_NEAR(fast(i, j), naive(i, j), 1e-8)
          << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CorrelationPlanTest,
    ::testing::Values(XCorrCase{8, 8, 4, 4}, XCorrCase{16, 16, 16, 16},
                      XCorrCase{10, 7, 3, 2},      // non-power-of-two data
                      XCorrCase{33, 65, 8, 16},    // odd data dims
                      XCorrCase{64, 64, 1, 1},     // trivial kernel
                      XCorrCase{5, 31, 5, 4},      // full-height kernel
                      XCorrCase{128, 32, 32, 32}));

TEST(CorrelationPlanTest, PlanReusedAcrossKernels) {
  const table::Matrix data = RandomMatrix(24, 24, 42);
  CorrelationPlan plan(data);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const table::Matrix kernel = RandomMatrix(6, 9, seed);
    const table::Matrix naive = CrossCorrelateNaive(data, kernel);
    const table::Matrix fast = plan.Correlate(kernel);
    for (size_t i = 0; i < naive.rows(); ++i) {
      for (size_t j = 0; j < naive.cols(); ++j) {
        EXPECT_NEAR(fast(i, j), naive(i, j), 1e-9);
      }
    }
  }
}

TEST(CorrelationPlanTest, ConcurrentCorrelateMatchesSequential) {
  // The pool build shares one plan across worker threads; concurrent
  // Correlate calls must be bit-identical to sequential ones (Correlate is
  // const and owns its workspace).
  const table::Matrix data = RandomMatrix(32, 32, 77);
  const CorrelationPlan plan(data);
  constexpr size_t kKernels = 16;
  std::vector<table::Matrix> kernels;
  kernels.reserve(kKernels);
  for (uint64_t seed = 0; seed < kKernels; ++seed) {
    kernels.push_back(RandomMatrix(8, 8, 1000 + seed));
  }
  std::vector<table::Matrix> sequential(kKernels);
  for (size_t i = 0; i < kKernels; ++i) {
    sequential[i] = plan.Correlate(kernels[i]);
  }
  std::vector<table::Matrix> concurrent(kKernels);
  util::ParallelFor(kKernels, 8, [&](size_t i) {
    concurrent[i] = plan.Correlate(kernels[i]);
  });
  for (size_t i = 0; i < kKernels; ++i) {
    EXPECT_TRUE(concurrent[i] == sequential[i]) << "kernel " << i;
  }
}

void ExpectMatchesNaive(const table::Matrix& data, const table::Matrix& kernel,
                        const table::Matrix& fast, double tolerance,
                        const char* label) {
  const table::Matrix naive = CrossCorrelateNaive(data, kernel);
  ASSERT_EQ(naive.rows(), fast.rows()) << label;
  ASSERT_EQ(naive.cols(), fast.cols()) << label;
  for (size_t i = 0; i < naive.rows(); ++i) {
    for (size_t j = 0; j < naive.cols(); ++j) {
      EXPECT_NEAR(fast(i, j), naive(i, j), tolerance)
          << label << " at (" << i << "," << j << ")";
    }
  }
}

TEST(CorrelatePairTest, OddKernelPairMatchesNaive) {
  const table::Matrix data = RandomMatrix(20, 17, 301);
  const table::Matrix kernel_a = RandomMatrix(3, 5, 302);
  const table::Matrix kernel_b = RandomMatrix(7, 3, 303);
  CorrelationPlan plan(data);
  const auto [fast_a, fast_b] = plan.CorrelatePair(kernel_a, kernel_b);
  ExpectMatchesNaive(data, kernel_a, fast_a, 1e-9, "kernel a");
  ExpectMatchesNaive(data, kernel_b, fast_b, 1e-9, "kernel b");
}

TEST(CorrelatePairTest, MismatchedKernelShapesMatchNaive) {
  // The two halves of the packed grid carry kernels of different shapes, so
  // each output has its own valid size.
  const table::Matrix data = RandomMatrix(24, 31, 311);
  const table::Matrix kernel_a = RandomMatrix(4, 4, 312);
  const table::Matrix kernel_b = RandomMatrix(2, 7, 313);
  CorrelationPlan plan(data);
  const auto [fast_a, fast_b] = plan.CorrelatePair(kernel_a, kernel_b);
  ExpectMatchesNaive(data, kernel_a, fast_a, 1e-9, "4x4 kernel");
  ExpectMatchesNaive(data, kernel_b, fast_b, 1e-9, "2x7 kernel");
}

TEST(CorrelatePairTest, FullSizeAndTrivialKernelPair) {
  // Extremes in one pair: a kernel covering the whole table (1x1 output)
  // packed with a 1x1 kernel (full-size output).
  const table::Matrix data = RandomMatrix(16, 16, 321);
  const table::Matrix kernel_a = RandomMatrix(16, 16, 322);
  const table::Matrix kernel_b = RandomMatrix(1, 1, 323);
  CorrelationPlan plan(data);
  const auto [fast_a, fast_b] = plan.CorrelatePair(kernel_a, kernel_b);
  ExpectMatchesNaive(data, kernel_a, fast_a, 1e-8, "full-size kernel");
  ExpectMatchesNaive(data, kernel_b, fast_b, 1e-9, "1x1 kernel");
}

TEST(CorrelatePairTest, AgreesWithSingleKernelCorrelate) {
  // The pair-packed path and the single-kernel path are different transform
  // pipelines, so they agree to rounding, not bitwise.
  const table::Matrix data = RandomMatrix(33, 65, 331);
  const table::Matrix kernel_a = RandomMatrix(8, 16, 332);
  const table::Matrix kernel_b = RandomMatrix(8, 16, 333);
  CorrelationPlan plan(data);
  const auto [fast_a, fast_b] = plan.CorrelatePair(kernel_a, kernel_b);
  const table::Matrix single_a = plan.Correlate(kernel_a);
  const table::Matrix single_b = plan.Correlate(kernel_b);
  for (size_t i = 0; i < single_a.rows(); ++i) {
    for (size_t j = 0; j < single_a.cols(); ++j) {
      EXPECT_NEAR(fast_a(i, j), single_a(i, j), 1e-9);
      EXPECT_NEAR(fast_b(i, j), single_b(i, j), 1e-9);
    }
  }
}

TEST(CorrelatePairTest, ConcurrentPairsAreBitIdenticalToSequential) {
  // The pool build fans pairs over threads against one shared plan; each
  // pair's arithmetic must not depend on which thread runs it.
  const table::Matrix data = RandomMatrix(32, 32, 341);
  const CorrelationPlan plan(data);
  constexpr size_t kPairs = 8;
  std::vector<table::Matrix> kernels;
  for (uint64_t seed = 0; seed < 2 * kPairs; ++seed) {
    kernels.push_back(RandomMatrix(8, 8, 2000 + seed));
  }
  std::vector<table::Matrix> sequential(2 * kPairs);
  for (size_t j = 0; j < kPairs; ++j) {
    auto [a, b] = plan.CorrelatePair(kernels[2 * j], kernels[2 * j + 1]);
    sequential[2 * j] = std::move(a);
    sequential[2 * j + 1] = std::move(b);
  }
  std::vector<table::Matrix> concurrent(2 * kPairs);
  util::ParallelFor(kPairs, 8, [&](size_t j) {
    auto [a, b] = plan.CorrelatePair(kernels[2 * j], kernels[2 * j + 1]);
    concurrent[2 * j] = std::move(a);
    concurrent[2 * j + 1] = std::move(b);
  });
  for (size_t i = 0; i < 2 * kPairs; ++i) {
    EXPECT_TRUE(concurrent[i] == sequential[i]) << "kernel " << i;
  }
}

TEST(CorrelationPlanTest, ConstructionCounterCountsPlans) {
  const table::Matrix data = RandomMatrix(8, 8, 5);
  const size_t before = CorrelationPlan::plans_constructed();
  {
    CorrelationPlan first(data);
    CorrelationPlan second(data);
    CorrelationPlan moved(std::move(first));  // moves are not constructions
    (void)moved;
  }
  EXPECT_EQ(CorrelationPlan::plans_constructed() - before, 2u);
}

TEST(FftDeathTest, NonPowerOfTwoLengthAborts) {
  std::vector<Complex> data(3);
  EXPECT_DEATH(Forward(data), "not a power of two");
}

}  // namespace
}  // namespace tabsketch::fft
