#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <utility>
#include <vector>

#include "fft/complex_fft.h"
#include "fft/correlate.h"
#include "fft/fft2d.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/parallel.h"

namespace tabsketch::fft {
namespace {

using Complex = std::complex<double>;

table::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 2.0 - 1.0;
  return out;
}

TEST(NextPowerOfTwoTest, KnownValues) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(IsPowerOfTwoTest, KnownValues) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(96));
}

TEST(ComplexFftTest, SizeOneIsIdentity) {
  std::vector<Complex> data = {Complex(3.0, -2.0)};
  Forward(data);
  EXPECT_DOUBLE_EQ(data[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(data[0].imag(), -2.0);
}

TEST(ComplexFftTest, DeltaTransformsToAllOnes) {
  std::vector<Complex> data(8, Complex(0.0, 0.0));
  data[0] = Complex(1.0, 0.0);
  Forward(data);
  for (const auto& value : data) {
    EXPECT_NEAR(value.real(), 1.0, 1e-12);
    EXPECT_NEAR(value.imag(), 0.0, 1e-12);
  }
}

TEST(ComplexFftTest, ConstantTransformsToScaledDelta) {
  std::vector<Complex> data(8, Complex(1.0, 0.0));
  Forward(data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
  }
}

TEST(ComplexFftTest, MatchesDirectDftOnSmallInput) {
  rng::Xoshiro256 gen(5);
  constexpr size_t kN = 16;
  std::vector<Complex> data(kN);
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
  }
  std::vector<Complex> expected(kN);
  for (size_t k = 0; k < kN; ++k) {
    Complex acc(0.0, 0.0);
    for (size_t n = 0; n < kN; ++n) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * n) / kN;
      acc += data[n] * Complex(std::cos(angle), std::sin(angle));
    }
    expected[k] = acc;
  }
  Forward(data);
  for (size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-10);
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-10);
  }
}

class FftRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftRoundTripTest, ForwardThenInverseIsIdentity) {
  const size_t n = GetParam();
  rng::Xoshiro256 gen(n);
  std::vector<Complex> data(n);
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
  }
  const std::vector<Complex> original = data;
  Forward(data);
  Inverse(data);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024, 4096));

TEST(ComplexFftTest, ParsevalEnergyConservation) {
  constexpr size_t kN = 512;
  rng::Xoshiro256 gen(77);
  std::vector<Complex> data(kN);
  double time_energy = 0.0;
  for (auto& value : data) {
    value = Complex(gen.NextDouble() - 0.5, 0.0);
    time_energy += std::norm(value);
  }
  Forward(data);
  double freq_energy = 0.0;
  for (const auto& value : data) freq_energy += std::norm(value);
  EXPECT_NEAR(freq_energy / static_cast<double>(kN), time_energy, 1e-9);
}

TEST(Fft2dTest, RoundTrip) {
  constexpr size_t kRows = 16;
  constexpr size_t kCols = 32;
  rng::Xoshiro256 gen(88);
  ComplexGrid grid(kRows, kCols);
  std::vector<Complex> original;
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kCols; ++c) {
      grid.At(r, c) = Complex(gen.NextDouble() - 0.5, gen.NextDouble() - 0.5);
      original.push_back(grid.At(r, c));
    }
  }
  Forward2D(&grid);
  Inverse2D(&grid);
  size_t index = 0;
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kCols; ++c, ++index) {
      EXPECT_NEAR(grid.At(r, c).real(), original[index].real(), 1e-10);
      EXPECT_NEAR(grid.At(r, c).imag(), original[index].imag(), 1e-10);
    }
  }
}

TEST(Fft2dTest, SeparabilityMatchesDirect2dDft) {
  // A rank-1 grid outer(u, v) has FFT outer(FFT(u), FFT(v)).
  constexpr size_t kN = 8;
  rng::Xoshiro256 gen(99);
  std::vector<Complex> u(kN), v(kN);
  for (auto& value : u) value = Complex(gen.NextDouble(), 0.0);
  for (auto& value : v) value = Complex(gen.NextDouble(), 0.0);

  ComplexGrid grid(kN, kN);
  for (size_t r = 0; r < kN; ++r) {
    for (size_t c = 0; c < kN; ++c) grid.At(r, c) = u[r] * v[c];
  }
  Forward2D(&grid);

  std::vector<Complex> fu = u;
  std::vector<Complex> fv = v;
  Forward(fu);
  Forward(fv);
  for (size_t r = 0; r < kN; ++r) {
    for (size_t c = 0; c < kN; ++c) {
      const Complex expected = fu[r] * fv[c];
      EXPECT_NEAR(grid.At(r, c).real(), expected.real(), 1e-9);
      EXPECT_NEAR(grid.At(r, c).imag(), expected.imag(), 1e-9);
    }
  }
}

TEST(CrossCorrelateNaiveTest, HandComputedExample) {
  table::Matrix data(2, 3, {1, 2, 3,
                            4, 5, 6});
  table::Matrix kernel(1, 2, {1, 10});
  // Valid positions: 2 rows x 2 cols.
  table::Matrix out = CrossCorrelateNaive(data, kernel);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out(0, 0), 1 + 20);
  EXPECT_DOUBLE_EQ(out(0, 1), 2 + 30);
  EXPECT_DOUBLE_EQ(out(1, 0), 4 + 50);
  EXPECT_DOUBLE_EQ(out(1, 1), 5 + 60);
}

TEST(CrossCorrelateNaiveTest, KernelSameSizeAsDataGivesDotProduct) {
  table::Matrix data(2, 2, {1, 2, 3, 4});
  table::Matrix kernel(2, 2, {5, 6, 7, 8});
  table::Matrix out = CrossCorrelateNaive(data, kernel);
  ASSERT_EQ(out.rows(), 1u);
  ASSERT_EQ(out.cols(), 1u);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0 + 12.0 + 21.0 + 32.0);
}

struct XCorrCase {
  size_t data_rows, data_cols, kernel_rows, kernel_cols;
};

class CorrelationPlanTest : public ::testing::TestWithParam<XCorrCase> {};

TEST_P(CorrelationPlanTest, FftMatchesNaive) {
  const XCorrCase c = GetParam();
  const table::Matrix data = RandomMatrix(c.data_rows, c.data_cols, 1234);
  const table::Matrix kernel =
      RandomMatrix(c.kernel_rows, c.kernel_cols, 5678);

  const table::Matrix naive = CrossCorrelateNaive(data, kernel);
  CorrelationPlan plan(data);
  const table::Matrix fast = plan.Correlate(kernel);

  ASSERT_EQ(naive.rows(), fast.rows());
  ASSERT_EQ(naive.cols(), fast.cols());
  for (size_t i = 0; i < naive.rows(); ++i) {
    for (size_t j = 0; j < naive.cols(); ++j) {
      EXPECT_NEAR(fast(i, j), naive(i, j), 1e-8)
          << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CorrelationPlanTest,
    ::testing::Values(XCorrCase{8, 8, 4, 4}, XCorrCase{16, 16, 16, 16},
                      XCorrCase{10, 7, 3, 2},      // non-power-of-two data
                      XCorrCase{33, 65, 8, 16},    // odd data dims
                      XCorrCase{64, 64, 1, 1},     // trivial kernel
                      XCorrCase{5, 31, 5, 4},      // full-height kernel
                      XCorrCase{128, 32, 32, 32}));

TEST(CorrelationPlanTest, PlanReusedAcrossKernels) {
  const table::Matrix data = RandomMatrix(24, 24, 42);
  CorrelationPlan plan(data);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const table::Matrix kernel = RandomMatrix(6, 9, seed);
    const table::Matrix naive = CrossCorrelateNaive(data, kernel);
    const table::Matrix fast = plan.Correlate(kernel);
    for (size_t i = 0; i < naive.rows(); ++i) {
      for (size_t j = 0; j < naive.cols(); ++j) {
        EXPECT_NEAR(fast(i, j), naive(i, j), 1e-9);
      }
    }
  }
}

TEST(CorrelationPlanTest, ConcurrentCorrelateMatchesSequential) {
  // The pool build shares one plan across worker threads; concurrent
  // Correlate calls must be bit-identical to sequential ones (Correlate is
  // const and owns its workspace).
  const table::Matrix data = RandomMatrix(32, 32, 77);
  const CorrelationPlan plan(data);
  constexpr size_t kKernels = 16;
  std::vector<table::Matrix> kernels;
  kernels.reserve(kKernels);
  for (uint64_t seed = 0; seed < kKernels; ++seed) {
    kernels.push_back(RandomMatrix(8, 8, 1000 + seed));
  }
  std::vector<table::Matrix> sequential(kKernels);
  for (size_t i = 0; i < kKernels; ++i) {
    sequential[i] = plan.Correlate(kernels[i]);
  }
  std::vector<table::Matrix> concurrent(kKernels);
  util::ParallelFor(kKernels, 8, [&](size_t i) {
    concurrent[i] = plan.Correlate(kernels[i]);
  });
  for (size_t i = 0; i < kKernels; ++i) {
    EXPECT_TRUE(concurrent[i] == sequential[i]) << "kernel " << i;
  }
}

TEST(CorrelationPlanTest, ConstructionCounterCountsPlans) {
  const table::Matrix data = RandomMatrix(8, 8, 5);
  const size_t before = CorrelationPlan::plans_constructed();
  {
    CorrelationPlan first(data);
    CorrelationPlan second(data);
    CorrelationPlan moved(std::move(first));  // moves are not constructions
    (void)moved;
  }
  EXPECT_EQ(CorrelationPlan::plans_constructed() - before, 2u);
}

TEST(FftDeathTest, NonPowerOfTwoLengthAborts) {
  std::vector<Complex> data(3);
  EXPECT_DEATH(Forward(data), "not a power of two");
}

}  // namespace
}  // namespace tabsketch::fft
