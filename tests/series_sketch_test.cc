#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/series_sketch.h"
#include "core/sketcher.h"
#include "fft/correlate1d.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> out(n);
  for (double& value : out) value = gen.NextDouble() * 20.0 - 10.0;
  return out;
}

TEST(Correlate1DTest, HandComputed) {
  const std::vector<double> series = {1, 2, 3, 4};
  const std::vector<double> kernel = {1, 10};
  const std::vector<double> out =
      fft::CrossCorrelateNaive1D(series, kernel);
  EXPECT_EQ(out, (std::vector<double>{21, 32, 43}));
}

TEST(Correlate1DTest, PlanMatchesNaiveAcrossShapes) {
  for (size_t n : {5u, 16u, 33u, 100u}) {
    const std::vector<double> series = RandomSeries(n, n);
    for (size_t m : {1u, 2u, 5u}) {
      if (m > n) continue;
      const std::vector<double> kernel = RandomSeries(m, 100 + m);
      const auto naive = fft::CrossCorrelateNaive1D(series, kernel);
      fft::CorrelationPlan1D plan(series);
      const auto fast = plan.Correlate(kernel);
      ASSERT_EQ(naive.size(), fast.size());
      for (size_t i = 0; i < naive.size(); ++i) {
        EXPECT_NEAR(fast[i], naive[i], 1e-9) << "n=" << n << " m=" << m;
      }
    }
  }
}

TEST(SeriesSketcherTest, CreateValidates) {
  EXPECT_FALSE(SeriesSketcher::Create({.p = 0.0, .k = 4, .seed = 1}).ok());
  EXPECT_TRUE(SeriesSketcher::Create({.p = 1.0, .k = 4, .seed = 1}).ok());
}

TEST(SeriesSketcherTest, MatchesSingleRowTableSketch) {
  // The documented cross-compatibility invariant: a length-n window sketch
  // equals the 2-D sketch of the same data as a 1 x n subtable.
  SketchParams params{.p = 0.5, .k = 8, .seed = 33};
  auto series_sketcher = SeriesSketcher::Create(params);
  auto table_sketcher = Sketcher::Create(params);
  ASSERT_TRUE(series_sketcher.ok() && table_sketcher.ok());

  const std::vector<double> window = RandomSeries(17, 2);
  table::Matrix as_table(1, window.size(),
                         std::vector<double>(window.begin(), window.end()));
  const Sketch from_series = series_sketcher->SketchOf(window);
  const Sketch from_table = table_sketcher->SketchOf(as_table.View());
  ASSERT_EQ(from_series.size(), from_table.size());
  for (size_t i = 0; i < from_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_series.values[i], from_table.values[i]);
  }
}

TEST(SeriesSketcherTest, FieldMatchesDirectSketches) {
  SketchParams params{.p = 1.0, .k = 5, .seed = 7};
  auto sketcher = SeriesSketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const std::vector<double> series = RandomSeries(64, 9);
  constexpr size_t kWindow = 12;
  auto field_or = sketcher->SketchAllPositions(series, kWindow,
                                               SketchAlgorithm::kNaive);
  ASSERT_TRUE(field_or.ok());
  const SeriesSketchField& field = *field_or;
  ASSERT_EQ(field.positions(), series.size() - kWindow + 1);
  for (size_t pos = 0; pos < field.positions(); pos += 7) {
    const Sketch direct = sketcher->SketchOf(
        std::span<const double>(series).subspan(pos, kWindow));
    const Sketch from_field = field.SketchAt(pos);
    for (size_t i = 0; i < params.k; ++i) {
      EXPECT_NEAR(direct.values[i], from_field.values[i], 1e-9);
    }
  }
}

TEST(SeriesSketcherTest, FftFieldMatchesNaiveField) {
  SketchParams params{.p = 1.5, .k = 4, .seed = 13};
  auto sketcher = SeriesSketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const std::vector<double> series = RandomSeries(100, 21);
  const auto naive =
      sketcher->SketchAllPositions(series, 16, SketchAlgorithm::kNaive);
  const auto fft =
      sketcher->SketchAllPositions(series, 16, SketchAlgorithm::kFft);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(fft.ok());
  ASSERT_EQ(naive->positions(), fft->positions());
  for (size_t pos = 0; pos < naive->positions(); ++pos) {
    const Sketch a = naive->SketchAt(pos);
    const Sketch b = fft->SketchAt(pos);
    for (size_t i = 0; i < params.k; ++i) {
      EXPECT_NEAR(a.values[i], b.values[i], 1e-8);
    }
  }
}

TEST(SeriesSketcherTest, OversizedWindowIsInvalidArgument) {
  // A window longer than the series used to trip a CHECK inside the FFT
  // plan; it must surface as a recoverable status with a 1-based message.
  SketchParams params{.p = 1.0, .k = 2, .seed = 9};
  auto sketcher = SeriesSketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const std::vector<double> series = RandomSeries(16, 10);
  for (const SketchAlgorithm algorithm :
       {SketchAlgorithm::kNaive, SketchAlgorithm::kFft,
        SketchAlgorithm::kAuto}) {
    auto oversized = sketcher->SketchAllPositions(series, 17, algorithm);
    ASSERT_FALSE(oversized.ok());
    EXPECT_EQ(oversized.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(oversized.status().message().find("does not fit"),
              std::string::npos)
        << oversized.status().message();
    auto zero = sketcher->SketchAllPositions(series, 0, algorithm);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(SeriesSketcherTest, EstimateTracksExactDistance) {
  SketchParams params{.p = 1.0, .k = 400, .seed = 3};
  auto sketcher = SeriesSketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<double> x = RandomSeries(256, 51);
  const std::vector<double> y = RandomSeries(256, 52);
  const double exact = LpDistance(x, y, 1.0);
  const double approx =
      estimator->Estimate(sketcher->SketchOf(x), sketcher->SketchOf(y));
  EXPECT_NEAR(approx / exact, 1.0, 0.2);
}

TEST(SeriesSketchPoolTest, BuildAndEnumerate) {
  const std::vector<double> series = RandomSeries(200, 61);
  SeriesSketchPool::Options options;
  options.log2_min = 3;
  auto pool = SeriesSketchPool::Build(series, {.p = 1.0, .k = 4, .seed = 2},
                                      options);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->CanonicalLengths(), (std::vector<size_t>{8, 16, 32, 64,
                                                           128}));
  EXPECT_TRUE(pool->Covers(8));
  EXPECT_TRUE(pool->Covers(200));
  EXPECT_FALSE(pool->Covers(7));
}

TEST(SeriesSketchPoolTest, BuildRejectsImpossibleOptions) {
  const std::vector<double> series = RandomSeries(16, 62);
  SeriesSketchPool::Options options;
  options.log2_min = 6;  // 64 > 16
  EXPECT_FALSE(SeriesSketchPool::Build(series,
                                       {.p = 1.0, .k = 4, .seed = 2},
                                       options)
                   .ok());
}

TEST(SeriesSketchPoolTest, CanonicalMatchesDirect) {
  const std::vector<double> series = RandomSeries(100, 63);
  SketchParams params{.p = 1.0, .k = 6, .seed = 5};
  SeriesSketchPool::Options options;
  options.log2_min = 3;
  auto pool = SeriesSketchPool::Build(series, params, options);
  auto sketcher = SeriesSketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());
  auto canonical = pool->CanonicalSketchAt(11, 16);
  ASSERT_TRUE(canonical.ok());
  const Sketch direct = sketcher->SketchOf(
      std::span<const double>(series).subspan(11, 16));
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(canonical->values[i], direct.values[i], 1e-9);
  }
}

TEST(SeriesSketchPoolTest, QueryErrors) {
  const std::vector<double> series = RandomSeries(64, 64);
  SeriesSketchPool::Options options;
  options.log2_min = 3;
  auto pool = SeriesSketchPool::Build(series, {.p = 1.0, .k = 2, .seed = 5},
                                      options);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->Query(0, 0).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(pool->Query(60, 10).status().code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(pool->Query(0, 5).status().code(), util::StatusCode::kNotFound);
  EXPECT_TRUE(pool->Query(3, 10).ok());
}

TEST(SeriesSketchPoolTest, DyadicQueryIsTwiceCanonical) {
  const std::vector<double> series = RandomSeries(64, 65);
  SketchParams params{.p = 1.0, .k = 5, .seed = 5};
  SeriesSketchPool::Options options;
  options.log2_min = 3;
  auto pool = SeriesSketchPool::Build(series, params, options);
  ASSERT_TRUE(pool.ok());
  auto compound = pool->Query(4, 16);
  auto canonical = pool->CanonicalSketchAt(4, 16);
  ASSERT_TRUE(compound.ok() && canonical.ok());
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(compound->values[i], 2.0 * canonical->values[i], 1e-9);
  }
}

TEST(SeriesSketchPoolTest, CompoundIsSumOfTwoAnchors) {
  const std::vector<double> series = RandomSeries(128, 66);
  SketchParams params{.p = 1.0, .k = 4, .seed = 6};
  SeriesSketchPool::Options options;
  options.log2_min = 3;
  auto pool = SeriesSketchPool::Build(series, params, options);
  auto sketcher = SeriesSketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());
  const size_t start = 10, length = 21;  // canonical 16
  auto compound = pool->Query(start, length);
  ASSERT_TRUE(compound.ok());
  auto span = std::span<const double>(series);
  Sketch expected = sketcher->SketchOf(span.subspan(start, 16));
  expected.Add(sketcher->SketchOf(span.subspan(start + length - 16, 16)));
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(compound->values[i], expected.values[i], 1e-9);
  }
}

TEST(SeriesSketchPoolTest, CompoundDistancesPreserveNearVsFar) {
  // Two sine-like regimes; same-regime windows are closer than cross-regime
  // under compound estimates of equal length.
  std::vector<double> series(256);
  for (size_t i = 0; i < 256; ++i) {
    series[i] = (i < 128) ? 10.0 + std::sin(0.3 * static_cast<double>(i))
                          : 200.0 + std::sin(0.3 * static_cast<double>(i));
  }
  SketchParams params{.p = 1.0, .k = 128, .seed = 7};
  SeriesSketchPool::Options options;
  options.log2_min = 3;
  auto pool = SeriesSketchPool::Build(series, params, options);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(pool.ok() && estimator.ok());
  auto low1 = pool->Query(5, 20);
  auto low2 = pool->Query(70, 20);
  auto high = pool->Query(150, 20);
  ASSERT_TRUE(low1.ok() && low2.ok() && high.ok());
  EXPECT_LT(estimator->Estimate(*low1, *low2),
            estimator->Estimate(*low1, *high));
}

}  // namespace
}  // namespace tabsketch::core
