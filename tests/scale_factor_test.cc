#include <gtest/gtest.h>

#include <cmath>

#include "core/scale_factor.h"

namespace tabsketch::core {
namespace {

TEST(ScaleFactorTest, ClosedFormAtPOne) {
  EXPECT_DOUBLE_EQ(MedianAbsStable(1.0), 1.0);
}

TEST(ScaleFactorTest, ClosedFormAtPTwo) {
  // Median of |N(0,1)| = Phi^-1(0.75).
  EXPECT_NEAR(MedianAbsStable(2.0), 0.674489750196, 1e-9);
}

TEST(ScaleFactorTest, MonteCarloIsDeterministic) {
  const double first = MedianAbsStable(0.5);
  const double second = MedianAbsStable(0.5);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(ScaleFactorTest, ValuesArePositiveAcrossRange) {
  for (double p : {0.2, 0.4, 0.6, 0.8, 1.2, 1.4, 1.6, 1.8}) {
    EXPECT_GT(MedianAbsStable(p, 200'000), 0.0) << "p=" << p;
  }
}

TEST(ScaleFactorTest, ContinuityNearPOne) {
  // The CMS transform is continuous at alpha = 1, so Monte-Carlo values just
  // off p=1 should be near the Cauchy closed form.
  EXPECT_NEAR(MedianAbsStable(0.999), 1.0, 0.02);
  EXPECT_NEAR(MedianAbsStable(1.001), 1.0, 0.02);
}

TEST(ScaleFactorTest, ConventionStepAtPTwo) {
  // Our alpha = 2 sampler returns N(0,1) while CMS at alpha -> 2 tends to
  // N(0,2); B(p) mirrors the sampler at every p, so just below 2 it must be
  // sqrt(2) times the p = 2 closed form. (Estimates stay correct at every p
  // because sampler and scale factor share the convention.)
  EXPECT_NEAR(MedianAbsStable(1.999), 0.6744897501960817 * std::sqrt(2.0),
              0.02);
}

TEST(ScaleFactorTest, SampleCountChangesCacheKeyNotValueMuch) {
  const double coarse = MedianAbsStable(0.75, 500'000);
  const double fine = MedianAbsStable(0.75, 2'000'000);
  EXPECT_NEAR(coarse / fine, 1.0, 0.01);
}

TEST(ScaleFactorDeathTest, RejectsOutOfRangeP) {
  EXPECT_DEATH(MedianAbsStable(0.0), "p must be in");
  EXPECT_DEATH(MedianAbsStable(2.5), "p must be in");
}

}  // namespace
}  // namespace tabsketch::core
