// Tests for the sketch-accuracy auditor: the ε envelope, metric-key
// formatting, Channel record/violation/skip semantics against a local
// registry, the sampling decision, concurrent recording (exercised under
// tsan), and a fixed-seed fixture whose violation count is recomputed by
// hand and compared against the counter.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "eval/audit.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/metrics.h"

namespace tabsketch {
namespace {

using eval::AuditEpsilon;
using eval::AuditKeyForP;
using eval::SketchAuditor;
using util::MetricsRegistry;

TEST(AuditEpsilonTest, MatchesGuaranteeEnvelope) {
  // C = 4 for p >= 0.75 (inclusive boundary), C = 6 below.
  EXPECT_DOUBLE_EQ(AuditEpsilon(1.0, 400), 4.0 / 20.0);
  EXPECT_DOUBLE_EQ(AuditEpsilon(2.0, 64), 0.5);
  EXPECT_DOUBLE_EQ(AuditEpsilon(0.75, 100), 4.0 / 10.0);
  EXPECT_DOUBLE_EQ(AuditEpsilon(0.5, 64), 6.0 / 8.0);
  // k is clamped to at least 1 so the envelope is always finite.
  EXPECT_DOUBLE_EQ(AuditEpsilon(1.0, 0), AuditEpsilon(1.0, 1));
}

TEST(AuditEpsilonTest, SparseFamilyWidensByInverseRootSparsity) {
  // The Li very-sparse envelope of DESIGN.md Section 16: eps scales by
  // s^(-1/2), and the dense default (s = 1) is exactly the classic bound.
  EXPECT_DOUBLE_EQ(AuditEpsilon(1.0, 64, 1.0), AuditEpsilon(1.0, 64));
  EXPECT_DOUBLE_EQ(AuditEpsilon(1.0, 64, 0.25), 2.0 * AuditEpsilon(1.0, 64));
  EXPECT_DOUBLE_EQ(AuditEpsilon(1.0, 16, 0.1),
                   4.0 / 4.0 / std::sqrt(0.1));
  EXPECT_DOUBLE_EQ(AuditEpsilon(0.5, 64, 0.25), 2.0 * 6.0 / 8.0);
}

TEST(AuditChannelTest, SparseChannelJudgesAgainstWidenedEnvelope) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(1.0, &registry);
  SketchAuditor::Channel* channel = auditor.ChannelFor(1.0, 64, 0.25);
  ASSERT_NE(channel, nullptr);
  EXPECT_DOUBLE_EQ(channel->sparsity(), 0.25);
  EXPECT_DOUBLE_EQ(channel->epsilon(), 1.0);  // 4/sqrt(64) * sqrt(4)

  channel->Record(10.0, 16.0);  // relerr 0.6: violates dense 0.5, not sparse
  channel->Record(10.0, 30.5);  // relerr 2.05: violates even the sparse eps
  EXPECT_EQ(channel->samples(), 2u);
  EXPECT_EQ(channel->violations(), 1u);

  const auto summaries = auditor.Summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(summaries[0].sparsity, 0.25);
  EXPECT_DOUBLE_EQ(summaries[0].epsilon, 1.0);
}

TEST(AuditKeyTest, UsesShortestSpelling) {
  EXPECT_EQ(AuditKeyForP(1.0), "p1");
  EXPECT_EQ(AuditKeyForP(2.0), "p2");
  EXPECT_EQ(AuditKeyForP(0.5), "p0.5");
  EXPECT_EQ(AuditKeyForP(1.25), "p1.25");
}

TEST(AuditChannelTest, RecordsErrorsViolationsAndSkips) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(1.0, &registry);
  SketchAuditor::Channel* channel = auditor.ChannelFor(1.0, 64);
  ASSERT_NE(channel, nullptr);
  EXPECT_DOUBLE_EQ(channel->epsilon(), 0.5);  // 4/sqrt(64)

  channel->Record(10.0, 11.0);  // relerr 0.1: inside the envelope
  channel->Record(10.0, 16.0);  // relerr 0.6: violation
  channel->Record(10.0, 4.0);   // relerr 0.6: violation (underestimates too)
  channel->Record(0.0, 5.0);    // exact == 0: relative error undefined, skip
  channel->Record(10.0, std::numeric_limits<double>::infinity());  // skip

  EXPECT_EQ(channel->samples(), 3u);
  EXPECT_EQ(channel->violations(), 2u);
  EXPECT_EQ(channel->skipped(), 2u);
  EXPECT_NEAR(channel->worst_relerr(), 0.6, 1e-12);

  // The same numbers are visible through the registry's metric keys.
  EXPECT_EQ(registry.GetCounter("audit.samples.p1")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("audit.violations.p1")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("audit.skipped_zero.p1")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("audit.samples")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("audit.violations")->value(), 2u);
  EXPECT_EQ(registry.GetHistogram("audit.relerr.p1")->count(), 3u);

  const auto summaries = auditor.Summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(summaries[0].p, 1.0);
  EXPECT_EQ(summaries[0].k, 64u);
  EXPECT_EQ(summaries[0].samples, 3u);
  EXPECT_EQ(summaries[0].violations, 2u);
}

TEST(AuditChannelTest, SeparateChannelsPerFamily) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(1.0, &registry);
  SketchAuditor::Channel* p1 = auditor.ChannelFor(1.0, 64);
  SketchAuditor::Channel* p2 = auditor.ChannelFor(2.0, 16);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(auditor.ChannelFor(1.0, 64), p1);  // stable lookup
  p2->Record(10.0, 10.1);
  EXPECT_EQ(p1->samples(), 0u);
  EXPECT_EQ(p2->samples(), 1u);
  EXPECT_EQ(auditor.Summaries().size(), 1u);  // sampleless channels elided
}

TEST(AuditSamplerTest, RateExtremesAreDeterministic) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(1.0, &registry);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(auditor.ShouldSample());
  auditor.Disable();
  EXPECT_DOUBLE_EQ(auditor.rate(), 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(auditor.ShouldSample());
}

TEST(AuditSamplerTest, MidRateSamplesApproximateFraction) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(0.25, &registry);
  int sampled = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) sampled += auditor.ShouldSample() ? 1 : 0;
  // ~Binomial(10000, 0.25): allow a generous +-5 sigma band.
  EXPECT_GT(sampled, 2280);
  EXPECT_LT(sampled, 2720);
}

TEST(AuditSamplerTest, RateIsClampedToUnitInterval) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(7.5, &registry);
  EXPECT_DOUBLE_EQ(auditor.rate(), 1.0);
  auditor.Enable(-0.5, &registry);
  EXPECT_DOUBLE_EQ(auditor.rate(), 0.0);
}

// Exercised under tsan (name matched by tools/check_tsan.sh): concurrent
// Record calls on one channel must be race-free and lose no samples.
TEST(AuditChannelTest, ConcurrentRecordIsRaceFree) {
  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(1.0, &registry);
  SketchAuditor::Channel* channel = auditor.ChannelFor(1.0, 16);
  constexpr int kThreads = 4;
  constexpr int kRecords = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([channel, &auditor] {
      for (int i = 0; i < kRecords; ++i) {
        if (auditor.ShouldSample()) {
          channel->Record(10.0, 10.5 + static_cast<double>(i % 3));
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // Estimates 10.5/11.5/12.5 vs exact 10: relerr <= 0.25 < eps = 4/4 = 1.
  EXPECT_EQ(channel->samples(),
            static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(channel->violations(), 0u);
  EXPECT_NEAR(channel->worst_relerr(), 0.25, 1e-12);
}

// The ISSUE-4 hand-count acceptance check: audit a fixed-seed fixture of
// sketch estimates at rate 1 and verify the ε-violation counter equals a
// count recomputed by hand with the same envelope formula.
TEST(AuditHandComputedTest, ViolationCounterMatchesManualCount) {
  const core::SketchParams params{.p = 1.0, .k = 64, .seed = 11};
  auto sketcher = core::Sketcher::Create(params).value();
  auto estimator = core::DistanceEstimator::Create(params).value();

  MetricsRegistry registry;
  SketchAuditor auditor;
  auditor.Enable(1.0, &registry);
  SketchAuditor::Channel* channel = auditor.ChannelFor(params.p, params.k);
  const double eps = AuditEpsilon(params.p, params.k);

  rng::Xoshiro256 gen(5);
  std::vector<double> scratch;
  uint64_t manual_violations = 0;
  double manual_worst = 0.0;
  constexpr int kPairs = 16;
  for (int pair = 0; pair < kPairs; ++pair) {
    table::Matrix a(8, 8);
    table::Matrix b(8, 8);
    for (double& v : a.Values()) v = gen.NextDouble() * 100.0;
    for (double& v : b.Values()) v = gen.NextDouble() * 100.0;
    const double exact = core::LpDistance(a.View(), b.View(), params.p);
    const auto sketch_a = sketcher.SketchOf(a.View());
    const auto sketch_b = sketcher.SketchOf(b.View());
    const double estimate =
        estimator.EstimateWithScratch(sketch_a.values, sketch_b.values,
                                      &scratch);
    channel->Record(exact, estimate);
    const double relerr = std::fabs(estimate / exact - 1.0);
    if (relerr > eps) ++manual_violations;
    if (relerr > manual_worst) manual_worst = relerr;
  }

  EXPECT_EQ(channel->samples(), static_cast<uint64_t>(kPairs));
  EXPECT_EQ(channel->violations(), manual_violations);
  EXPECT_NEAR(channel->worst_relerr(), manual_worst, 1e-12);
  // On a healthy 64-sketch family the bulk of the samples sit inside the
  // envelope, so violations are a strict minority of the fixture.
  EXPECT_LT(manual_violations, static_cast<uint64_t>(kPairs) / 2);
}

TEST(AuditGlobalTest, EnabledTracksGlobalRate) {
  SketchAuditor& global = SketchAuditor::Global();
  global.Disable();
  EXPECT_FALSE(SketchAuditor::Enabled());
  global.Enable(0.5);
#if TABSKETCH_METRICS_ENABLED
  EXPECT_TRUE(SketchAuditor::Enabled());
#else
  // Compiled-out builds hard-wire Enabled() to false.
  EXPECT_FALSE(SketchAuditor::Enabled());
#endif  // TABSKETCH_METRICS_ENABLED
  global.Disable();
  EXPECT_FALSE(SketchAuditor::Enabled());
  MetricsRegistry::Global().ResetValues();
}

}  // namespace
}  // namespace tabsketch
