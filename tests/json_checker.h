#ifndef TABSKETCH_TESTS_JSON_CHECKER_H_
#define TABSKETCH_TESTS_JSON_CHECKER_H_

// Test-only minimal JSON syntax checker. Enough to assert that the metrics
// dumps are well-formed JSON without pulling a parser dependency into the
// build: validates the full grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) and rejects trailing garbage.

#include <cctype>
#include <cstddef>
#include <string>

namespace tabsketch::testing {

class JsonChecker {
 public:
  /// True iff `text` is one complete, syntactically valid JSON value.
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipSpace();
    if (!checker.Value()) return false;
    checker.SkipSpace();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *c) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace tabsketch::testing

#endif  // TABSKETCH_TESTS_JSON_CHECKER_H_
