#include <gtest/gtest.h>

#include <vector>

#include "cluster/dbscan.h"
#include "cluster/exact_backend.h"
#include "cluster/sketch_backend.h"
#include "eval/confusion.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::cluster {
namespace {

/// Scalar tiles (1x1) at given positions; distance = |difference|.
table::Matrix ScalarTiles(const std::vector<double>& values) {
  return table::Matrix(1, values.size(),
                       std::vector<double>(values.begin(), values.end()));
}

TEST(DbscanTest, ValidatesOptions) {
  table::Matrix data = ScalarTiles({0, 1, 2});
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  EXPECT_FALSE(RunDbscan(&*backend, {.epsilon = 0.0, .min_points = 2}).ok());
  EXPECT_FALSE(RunDbscan(&*backend, {.epsilon = 1.0, .min_points = 0}).ok());
}

TEST(DbscanTest, TwoDenseGroupsAndNoise) {
  // Two dense groups and one isolated point.
  table::Matrix data = ScalarTiles({0.0, 0.5, 1.0, 1.5,        // group A
                                    100.0, 100.5, 101.0,       // group B
                                    500.0});                   // noise
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunDbscan(&*backend, {.epsilon = 1.0, .min_points = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2u);
  EXPECT_EQ(result->num_noise, 1u);
  EXPECT_EQ(result->assignment[7], kNoiseLabel);
  // Same group -> same label; different group -> different label.
  EXPECT_EQ(result->assignment[0], result->assignment[3]);
  EXPECT_EQ(result->assignment[4], result->assignment[6]);
  EXPECT_NE(result->assignment[0], result->assignment[4]);
}

TEST(DbscanTest, ChainsConnectThroughCorePoints) {
  // A chain with spacing 1: every interior point is core (eps=1, min=3),
  // so the whole chain is one cluster despite endpoints being 8 apart.
  table::Matrix data = ScalarTiles({0, 1, 2, 3, 4, 5, 6, 7, 8});
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunDbscan(&*backend, {.epsilon = 1.0, .min_points = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
  EXPECT_EQ(result->num_noise, 0u);
}

TEST(DbscanTest, BorderPointAttachesToFirstCluster) {
  // 2.5 is within eps of the dense group {0..2}'s edge point 2 but is not
  // itself core; it must join as a border point, not noise.
  table::Matrix data = ScalarTiles({0.0, 1.0, 2.0, 2.9, 100.0, 101.0,
                                    102.0});
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunDbscan(&*backend, {.epsilon = 1.0, .min_points = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[3], result->assignment[2]);
}

TEST(DbscanTest, AllNoiseWhenEpsilonTiny) {
  table::Matrix data = ScalarTiles({0, 10, 20, 30});
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunDbscan(&*backend, {.epsilon = 0.5, .min_points = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  EXPECT_EQ(result->num_noise, 4u);
}

TEST(DbscanTest, SketchBackendFindsSameClusters) {
  // Banded tiles with large separation; sketched DBSCAN must match exact.
  table::Matrix data(4, 64);
  rng::Xoshiro256 gen(5);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 64; ++c) {
      const double level = (c < 32) ? 10.0 : 1000.0;
      data(r, c) = level + gen.NextDouble();
    }
  }
  auto grid = table::TileGrid::Create(&data, 4, 4);
  ASSERT_TRUE(grid.ok());

  auto exact_backend = ExactBackend::Create(&*grid, 1.0);
  auto sketch_backend = SketchBackend::Create(
      &*grid, {.p = 1.0, .k = 128, .seed = 3}, SketchMode::kPrecomputed);
  ASSERT_TRUE(exact_backend.ok() && sketch_backend.ok());

  // Same-band tile distances ~ |uniform diffs| * 16 cells << cross-band.
  const DbscanOptions options{.epsilon = 50.0, .min_points = 3};
  auto exact = RunDbscan(&*exact_backend, options);
  auto sketched = RunDbscan(&*sketch_backend, options);
  ASSERT_TRUE(exact.ok() && sketched.ok());
  EXPECT_EQ(exact->num_clusters, 2u);
  EXPECT_EQ(sketched->num_clusters, 2u);
  EXPECT_DOUBLE_EQ(
      eval::BestMatchAgreement(exact->assignment, sketched->assignment, 2),
      1.0);
}

TEST(DbscanTest, CountsDistanceEvaluations) {
  table::Matrix data = ScalarTiles({0, 1, 2});
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunDbscan(&*backend, {.epsilon = 1.0, .min_points = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->distance_evaluations, 0u);
  EXPECT_EQ(result->distance_evaluations, backend->distance_evaluations());
}

}  // namespace
}  // namespace tabsketch::cluster
