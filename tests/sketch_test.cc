#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "core/stable_matrix.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed,
                          double scale = 100.0) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * scale;
  return out;
}

TEST(StableMatrixTest, DeterministicRegeneration) {
  SketchParams params{.p = 1.0, .k = 4, .seed = 99};
  const table::Matrix a = StableRandomMatrix(params, 2, 8, 8);
  const table::Matrix b = StableRandomMatrix(params, 2, 8, 8);
  EXPECT_TRUE(a == b);
}

TEST(StableMatrixTest, DistinctIndicesDiffer) {
  SketchParams params{.p = 1.0, .k = 4, .seed = 99};
  const table::Matrix a = StableRandomMatrix(params, 0, 8, 8);
  const table::Matrix b = StableRandomMatrix(params, 1, 8, 8);
  EXPECT_FALSE(a == b);
}

TEST(StableMatrixTest, DistinctShapesAndSeedsDiffer) {
  SketchParams params{.p = 1.0, .k = 4, .seed = 99};
  SketchParams other = params;
  other.seed = 100;
  EXPECT_NE(StableMatrixSeed(params.seed, 0, 8, 8),
            StableMatrixSeed(other.seed, 0, 8, 8));
  EXPECT_NE(StableMatrixSeed(params.seed, 0, 8, 8),
            StableMatrixSeed(params.seed, 0, 8, 16));
  EXPECT_NE(StableMatrixSeed(params.seed, 0, 8, 8),
            StableMatrixSeed(params.seed, 0, 16, 8));
}

TEST(StableMatrixTest, BatchMatchesIndividual) {
  SketchParams params{.p = 0.5, .k = 3, .seed = 7};
  const auto batch = StableRandomMatrices(params, 4, 6);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(batch[i] == StableRandomMatrix(params, i, 4, 6));
  }
}

TEST(SketchTest, AddAndScale) {
  Sketch a{{1.0, 2.0, 3.0}};
  Sketch b{{10.0, 20.0, 30.0}};
  a.Add(b);
  EXPECT_EQ(a.values, (std::vector<double>{11.0, 22.0, 33.0}));
  a.Scale(0.5);
  EXPECT_EQ(a.values, (std::vector<double>{5.5, 11.0, 16.5}));
}

TEST(SketcherTest, CreateValidatesParams) {
  EXPECT_FALSE(Sketcher::Create({.p = 0.0, .k = 8, .seed = 1}).ok());
  EXPECT_FALSE(Sketcher::Create({.p = 2.5, .k = 8, .seed = 1}).ok());
  EXPECT_FALSE(Sketcher::Create({.p = 1.0, .k = 0, .seed = 1}).ok());
  EXPECT_TRUE(Sketcher::Create({.p = 1.0, .k = 8, .seed = 1}).ok());
}

TEST(SketcherTest, SketchHasLengthK) {
  auto sketcher = Sketcher::Create({.p = 1.0, .k = 13, .seed = 5});
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(8, 8, 3);
  EXPECT_EQ(sketcher->SketchOf(data.View()).size(), 13u);
}

TEST(SketcherTest, SketchIsDeterministic) {
  SketchParams params{.p = 1.0, .k = 8, .seed = 5};
  auto s1 = Sketcher::Create(params);
  auto s2 = Sketcher::Create(params);
  ASSERT_TRUE(s1.ok() && s2.ok());
  const table::Matrix data = RandomTable(8, 8, 3);
  EXPECT_EQ(s1->SketchOf(data.View()).values,
            s2->SketchOf(data.View()).values);
}

TEST(SketcherTest, SketchIsLinearInTheObject) {
  // s(X + Y) = s(X) + s(Y) and s(cX) = c s(X): dot products are linear.
  auto sketcher = Sketcher::Create({.p = 0.75, .k = 6, .seed = 21});
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix x = RandomTable(6, 6, 1);
  const table::Matrix y = RandomTable(6, 6, 2);
  table::Matrix sum(6, 6);
  for (size_t i = 0; i < sum.Values().size(); ++i) {
    sum.Values()[i] = x.Values()[i] + y.Values()[i];
  }
  Sketch sx = sketcher->SketchOf(x.View());
  const Sketch sy = sketcher->SketchOf(y.View());
  const Sketch ssum = sketcher->SketchOf(sum.View());
  sx.Add(sy);
  for (size_t i = 0; i < sx.size(); ++i) {
    EXPECT_NEAR(sx.values[i], ssum.values[i], 1e-8);
  }
}

TEST(SketcherTest, FieldMatchesDirectSketchAtEveryPosition) {
  SketchParams params{.p = 1.0, .k = 5, .seed = 11};
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(12, 10, 4);
  constexpr size_t kWr = 3;
  constexpr size_t kWc = 4;
  auto field_or = sketcher->SketchAllPositions(data, kWr, kWc,
                                               SketchAlgorithm::kNaive);
  ASSERT_TRUE(field_or.ok());
  const SketchField& field = *field_or;
  ASSERT_EQ(field.position_rows(), data.rows() - kWr + 1);
  ASSERT_EQ(field.position_cols(), data.cols() - kWc + 1);
  for (size_t r = 0; r < field.position_rows(); r += 3) {
    for (size_t c = 0; c < field.position_cols(); c += 2) {
      const Sketch direct = sketcher->SketchOf(data.Window(r, c, kWr, kWc));
      const Sketch from_field = field.SketchAt(r, c);
      for (size_t i = 0; i < params.k; ++i) {
        EXPECT_NEAR(direct.values[i], from_field.values[i], 1e-8)
            << "at (" << r << "," << c << ") component " << i;
      }
    }
  }
}

TEST(SketcherTest, FftFieldMatchesNaiveField) {
  SketchParams params{.p = 0.5, .k = 4, .seed = 17};
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(20, 14, 8);
  auto naive_or =
      sketcher->SketchAllPositions(data, 4, 4, SketchAlgorithm::kNaive);
  auto fft_or =
      sketcher->SketchAllPositions(data, 4, 4, SketchAlgorithm::kFft);
  ASSERT_TRUE(naive_or.ok());
  ASSERT_TRUE(fft_or.ok());
  const SketchField& naive = *naive_or;
  const SketchField& fft = *fft_or;
  ASSERT_EQ(naive.position_rows(), fft.position_rows());
  ASSERT_EQ(naive.position_cols(), fft.position_cols());
  for (size_t i = 0; i < params.k; ++i) {
    for (size_t r = 0; r < naive.position_rows(); ++r) {
      for (size_t c = 0; c < naive.position_cols(); ++c) {
        EXPECT_NEAR(naive.plane(i).At(r, c), fft.plane(i).At(r, c), 1e-6)
            << "plane " << i << " at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(SketchFieldTest, AccumulateMatchesSketchAt) {
  auto sketcher = Sketcher::Create({.p = 1.0, .k = 3, .seed = 2});
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(8, 8, 5);
  auto field_or =
      sketcher->SketchAllPositions(data, 2, 2, SketchAlgorithm::kNaive);
  ASSERT_TRUE(field_or.ok());
  const SketchField& field = *field_or;
  Sketch acc;
  acc.values.assign(3, 0.0);
  field.AccumulateAt(1, 1, &acc);
  field.AccumulateAt(2, 3, &acc);
  const Sketch a = field.SketchAt(1, 1);
  const Sketch b = field.SketchAt(2, 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(acc.values[i], a.values[i] + b.values[i]);
  }
}

/// End-to-end accuracy sweep (paper Theorems 1-2): the estimated distance
/// between random tables should be within a modest relative error of the
/// exact Lp distance, for every p, with k = 400.
class SketchAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(SketchAccuracyTest, EstimateTracksExactDistance) {
  const double p = GetParam();
  SketchParams params{.p = p, .k = 400, .seed = 1234};
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(estimator.ok());

  // The median estimator's relative noise at fixed k grows as p shrinks
  // (the density of |SaS(p)| near its median flattens), so the acceptance
  // band widens for very small p.
  const double tolerance = (p < 0.5) ? 0.45 : 0.25;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    const table::Matrix x = RandomTable(16, 16, 100 + trial);
    const table::Matrix y = RandomTable(16, 16, 200 + trial);
    const double exact = LpDistance(x.View(), y.View(), p);
    const double approx = estimator->Estimate(
        sketcher->SketchOf(x.View()), sketcher->SketchOf(y.View()));
    EXPECT_NEAR(approx / exact, 1.0, tolerance)
        << "p=" << p << " trial=" << trial << " exact=" << exact
        << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Ps, SketchAccuracyTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.25, 1.5,
                                           1.75, 2.0));

TEST(SketchAccuracyTest, LargerKTightensTheEstimate) {
  // Average relative error over trials should shrink as k grows.
  const double p = 1.0;
  auto error_for_k = [p](size_t k) {
    SketchParams params{.p = p, .k = k, .seed = 4321};
    auto sketcher = Sketcher::Create(params);
    auto estimator = DistanceEstimator::Create(params);
    double total = 0.0;
    constexpr int kTrials = 20;
    for (int trial = 0; trial < kTrials; ++trial) {
      const table::Matrix x = RandomTable(8, 8, 300 + trial);
      const table::Matrix y = RandomTable(8, 8, 400 + trial);
      const double exact = LpDistance(x.View(), y.View(), p);
      const double approx = estimator->Estimate(
          sketcher->SketchOf(x.View()), sketcher->SketchOf(y.View()));
      total += std::fabs(approx / exact - 1.0);
    }
    return total / kTrials;
  };
  const double coarse = error_for_k(16);
  const double fine = error_for_k(1024);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.08);
}

TEST(SketcherDeathTest, EmptyViewAborts) {
  auto sketcher = Sketcher::Create({.p = 1.0, .k = 2, .seed = 1});
  ASSERT_TRUE(sketcher.ok());
  table::TableView empty;
  EXPECT_DEATH(sketcher->SketchOf(empty), "empty subtable");
}

TEST(SketcherTest, OversizedWindowIsInvalidArgument) {
  auto sketcher = Sketcher::Create({.p = 1.0, .k = 2, .seed = 1});
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(4, 4, 1);
  for (const SketchAlgorithm algorithm :
       {SketchAlgorithm::kNaive, SketchAlgorithm::kFft,
        SketchAlgorithm::kAuto}) {
    auto oversized = sketcher->SketchAllPositions(data, 5, 2, algorithm);
    ASSERT_FALSE(oversized.ok());
    EXPECT_EQ(oversized.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(oversized.status().message().find("does not fit"),
              std::string::npos);
    auto empty = sketcher->SketchAllPositions(data, 0, 2, algorithm);
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.status().code(), util::StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace tabsketch::core
