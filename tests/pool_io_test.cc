#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/pool_io.h"
#include "core/sketch_pool.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 10.0;
  return out;
}

SketchPool BuildSmallPool(const table::Matrix& data) {
  PoolOptions options;
  options.log2_min_rows = 2;
  options.log2_min_cols = 2;
  return SketchPool::Build(data, {.p = 1.0, .k = 5, .seed = 31}, options)
      .value();
}

TEST(PoolIoTest, RoundTripAnswersIdenticalQueries) {
  const table::Matrix data = RandomTable(16, 32, 1);
  const SketchPool original = BuildSmallPool(data);
  const std::string path = TempPath("tabsketch_pool.bin");
  ASSERT_TRUE(WriteSketchPool(original, path).ok());
  auto loaded = ReadSketchPool(path);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->params(), original.params());
  EXPECT_EQ(loaded->data_rows(), original.data_rows());
  EXPECT_EQ(loaded->data_cols(), original.data_cols());
  EXPECT_EQ(loaded->CanonicalSizes(), original.CanonicalSizes());

  // Identical query answers, canonical and compound.
  for (size_t row : {0u, 3u}) {
    for (size_t cols : {4u, 7u, 12u}) {
      auto before = original.Query(row, 1, 5, cols);
      auto after = loaded->Query(row, 1, 5, cols);
      ASSERT_TRUE(before.ok() && after.ok());
      EXPECT_EQ(before->values, after->values)
          << "row=" << row << " cols=" << cols;
    }
  }
  auto canonical_before = original.CanonicalSketchAt(2, 6, 4, 8);
  auto canonical_after = loaded->CanonicalSketchAt(2, 6, 4, 8);
  ASSERT_TRUE(canonical_before.ok() && canonical_after.ok());
  EXPECT_EQ(canonical_before->values, canonical_after->values);
  std::remove(path.c_str());
}

TEST(PoolIoTest, RejectsGarbage) {
  const std::string path = TempPath("tabsketch_pool_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pool at all";
  }
  EXPECT_FALSE(ReadSketchPool(path).ok());
  std::remove(path.c_str());
}

TEST(PoolIoTest, RejectsTruncation) {
  const table::Matrix data = RandomTable(16, 16, 2);
  const SketchPool pool = BuildSmallPool(data);
  const std::string path = TempPath("tabsketch_pool_trunc.bin");
  ASSERT_TRUE(WriteSketchPool(pool, path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(ReadSketchPool(path).ok());
  std::remove(path.c_str());
}

TEST(PoolIoTest, MissingFileIsIOError) {
  auto loaded = ReadSketchPool(TempPath("no_such_pool.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

TEST(PoolFromPartsTest, RejectsEmptyFields) {
  EXPECT_FALSE(SketchPool::FromParts({.p = 1.0, .k = 2, .seed = 1}, 8, 8, {})
                   .ok());
}

TEST(PoolFromPartsTest, RejectsInvalidParams) {
  const table::Matrix data = RandomTable(8, 8, 3);
  const SketchPool pool = BuildSmallPool(data);
  std::map<std::pair<size_t, size_t>, SketchField> fields(
      pool.fields().begin(), pool.fields().end());
  EXPECT_FALSE(SketchPool::FromParts({.p = 0.0, .k = 2, .seed = 1}, 8, 8,
                                     std::move(fields))
                   .ok());
}

}  // namespace
}  // namespace tabsketch::core
