#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pool_io.h"
#include "core/sketch_pool.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 10.0;
  return out;
}

SketchPool BuildSmallPool(const table::Matrix& data) {
  PoolOptions options;
  options.log2_min_rows = 2;
  options.log2_min_cols = 2;
  return SketchPool::Build(data, {.p = 1.0, .k = 5, .seed = 31}, options)
      .value();
}

TEST(PoolIoTest, RoundTripAnswersIdenticalQueries) {
  const table::Matrix data = RandomTable(16, 32, 1);
  const SketchPool original = BuildSmallPool(data);
  const std::string path = TempPath("tabsketch_pool.bin");
  ASSERT_TRUE(WriteSketchPool(original, path).ok());
  auto loaded = ReadSketchPool(path);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->params(), original.params());
  EXPECT_EQ(loaded->data_rows(), original.data_rows());
  EXPECT_EQ(loaded->data_cols(), original.data_cols());
  EXPECT_EQ(loaded->CanonicalSizes(), original.CanonicalSizes());

  // Identical query answers, canonical and compound.
  for (size_t row : {0u, 3u}) {
    for (size_t cols : {4u, 7u, 12u}) {
      auto before = original.Query(row, 1, 5, cols);
      auto after = loaded->Query(row, 1, 5, cols);
      ASSERT_TRUE(before.ok() && after.ok());
      EXPECT_EQ(before->values, after->values)
          << "row=" << row << " cols=" << cols;
    }
  }
  auto canonical_before = original.CanonicalSketchAt(2, 6, 4, 8);
  auto canonical_after = loaded->CanonicalSketchAt(2, 6, 4, 8);
  ASSERT_TRUE(canonical_before.ok() && canonical_after.ok());
  EXPECT_EQ(canonical_before->values, canonical_after->values);
  std::remove(path.c_str());
}

TEST(PoolIoTest, RejectsGarbage) {
  const std::string path = TempPath("tabsketch_pool_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pool at all";
  }
  EXPECT_FALSE(ReadSketchPool(path).ok());
  std::remove(path.c_str());
}

TEST(PoolIoTest, RejectsTruncation) {
  const table::Matrix data = RandomTable(16, 16, 2);
  const SketchPool pool = BuildSmallPool(data);
  const std::string path = TempPath("tabsketch_pool_trunc.bin");
  ASSERT_TRUE(WriteSketchPool(pool, path).ok());
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(ReadSketchPool(path).ok());
  std::remove(path.c_str());
}

TEST(PoolIoTest, MissingFileIsIOError) {
  auto loaded = ReadSketchPool(TempPath("no_such_pool.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Golden-file tests: tests/golden/pool_v1.pool pins the exact on-disk bytes
// of the pool format. The pool is rebuilt here from the same literal values
// the generator (tests/golden/generate_golden.py) uses — every value is a
// small multiple of 0.5, exactly representable — so a byte mismatch means
// the serialization format itself changed.

std::string GoldenPath(const std::string& name) {
  return std::string(TABSKETCH_TEST_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

double GoldenPlaneValue(size_t field, size_t plane, size_t index) {
  return static_cast<double>(field) * 100.0 +
         static_cast<double>(plane) * 10.0 +
         static_cast<double>(index) * 0.5 - 3.0;
}

SketchPool GoldenPool(double sparsity = 1.0) {
  // Mirrors generate_golden.py: fields (2x2) -> 7x7 positions and
  // (4x4) -> 5x5 positions, k = 2 planes each, over an 8x8 table.
  const struct {
    size_t window_rows, window_cols, position_rows, position_cols;
  } kFields[] = {{2, 2, 7, 7}, {4, 4, 5, 5}};
  std::map<std::pair<size_t, size_t>, SketchField> fields;
  size_t field_index = 0;
  for (const auto& f : kFields) {
    std::vector<table::Matrix> planes;
    for (size_t plane = 0; plane < 2; ++plane) {
      table::Matrix m(f.position_rows, f.position_cols);
      auto values = m.Values();
      for (size_t i = 0; i < values.size(); ++i) {
        values[i] = GoldenPlaneValue(field_index, plane, i);
      }
      planes.push_back(std::move(m));
    }
    fields.emplace(std::make_pair(f.window_rows, f.window_cols),
                   SketchField(f.window_rows, f.window_cols,
                               std::move(planes)));
    ++field_index;
  }
  return SketchPool::FromParts(
             {.p = 1.0, .k = 2, .seed = 31, .sparsity = sparsity}, 8, 8,
             std::move(fields))
      .value();
}

TEST(PoolIoGoldenTest, SerializationIsByteStable) {
  // The writer emits version 2 (64-byte header with the family sparsity);
  // the v2 fixture pins those bytes for a sparsity-0.25 family.
  const std::string golden = ReadFileBytes(GoldenPath("pool_v2.pool"));
  ASSERT_FALSE(golden.empty()) << "missing golden fixture";
  const std::string path = TempPath("tabsketch_pool_golden.bin");
  ASSERT_TRUE(WriteSketchPool(GoldenPool(0.25), path).ok());
  EXPECT_EQ(ReadFileBytes(path), golden)
      << "pool serialization bytes changed; if intentional, bump the format "
         "version and regenerate tests/golden";
  std::remove(path.c_str());
}

TEST(PoolIoGoldenTest, GoldenFileRoundTrips) {
  // The v1 fixture has no sparsity field; reading it must imply a dense
  // family (sparsity 1.0) so pre-v2 archives keep loading byte-identically.
  auto loaded = ReadSketchPool(GoldenPath("pool_v1.pool"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SketchPool expected = GoldenPool();
  EXPECT_EQ(loaded->params(), expected.params());
  EXPECT_EQ(loaded->params().sparsity, 1.0);
  EXPECT_EQ(loaded->data_rows(), expected.data_rows());
  EXPECT_EQ(loaded->data_cols(), expected.data_cols());
  ASSERT_EQ(loaded->fields().size(), expected.fields().size());
  for (const auto& [shape, field] : expected.fields()) {
    const auto it = loaded->fields().find(shape);
    ASSERT_NE(it, loaded->fields().end())
        << "missing field " << shape.first << "x" << shape.second;
    ASSERT_EQ(it->second.k(), field.k());
    for (size_t plane = 0; plane < field.k(); ++plane) {
      const auto got = it->second.plane(plane).Values();
      const auto want = field.plane(plane).Values();
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << "plane " << plane << " index " << i;
      }
    }
  }
}

TEST(PoolIoGoldenTest, V2GoldenFileRoundTrips) {
  auto loaded = ReadSketchPool(GoldenPath("pool_v2.pool"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SketchPool expected = GoldenPool(0.25);
  EXPECT_EQ(loaded->params(), expected.params());
  EXPECT_EQ(loaded->params().sparsity, 0.25);
  EXPECT_EQ(loaded->CanonicalSizes(), expected.CanonicalSizes());
}

TEST(PoolIoGoldenTest, CorruptedSparsityIsRejected) {
  // Out-of-range sparsity in a v2 header (offset 56, just before the field
  // headers) must fail parameter validation.
  std::string bytes = ReadFileBytes(GoldenPath("pool_v2.pool"));
  ASSERT_FALSE(bytes.empty());
  const double bad = -0.5;
  std::memcpy(bytes.data() + 56, &bad, sizeof(bad));
  const std::string path = TempPath("tabsketch_pool_badsparsity.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadSketchPool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PoolIoGoldenTest, TruncatedSparsityFieldIsCleanIOError) {
  // A v2 file cut mid-sparsity (60 of 64 header bytes) must be IOError.
  const std::string bytes = ReadFileBytes(GoldenPath("pool_v2.pool"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_pool_shortsparsity.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), 60);
  }
  auto loaded = ReadSketchPool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(PoolIoGoldenTest, CorruptedMagicIsCleanIOError) {
  std::string bytes = ReadFileBytes(GoldenPath("pool_v1.pool"));
  ASSERT_FALSE(bytes.empty());
  bytes[1] = '?';  // break the magic
  const std::string path = TempPath("tabsketch_pool_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadSketchPool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(PoolIoGoldenTest, TruncatedHeaderIsCleanIOError) {
  const std::string bytes = ReadFileBytes(GoldenPath("pool_v1.pool"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_pool_shorthdr.bin");
  // 56-byte pool header, then a 32-byte field header: cut inside both.
  for (const size_t keep : {size_t{0}, size_t{5}, size_t{40}, size_t{70}}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    auto loaded = ReadSketchPool(path);
    EXPECT_FALSE(loaded.ok()) << "header truncated to " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

// Patches the 8-byte little-endian value at `offset` and writes the result
// to a temp file, for corrupting specific golden header fields in place.
std::string WritePatched(std::string bytes, size_t offset, uint64_t value,
                         const std::string& name) {
  std::memcpy(&bytes[offset], &value, sizeof(value));
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(PoolIoGoldenTest, CorruptedWindowDimsAreCleanIOError) {
  // The 56-byte pool header is followed by the first field header:
  // window_rows @56, window_cols @64, position_rows @72, position_cols @80.
  // The golden pool is 8x8 with a (2,2) -> 7x7 field; corrupt window dims
  // that are zero, larger than the table, or inconsistent with the declared
  // position counts must all be rejected up front, not crash later.
  const std::string bytes = ReadFileBytes(GoldenPath("pool_v1.pool"));
  ASSERT_FALSE(bytes.empty());
  const struct {
    size_t offset;
    uint64_t value;
    const char* what;
  } kCases[] = {
      {56, 0, "zero window_rows"},
      {64, 0, "zero window_cols"},
      {56, 200, "window_rows beyond the table"},
      {64, 9, "window_cols beyond the table"},
      {56, 3, "window_rows inconsistent with position_rows"},
      {64, 1, "window_cols inconsistent with position_cols"},
  };
  for (const auto& test_case : kCases) {
    const std::string path =
        WritePatched(bytes, test_case.offset, test_case.value,
                     "tabsketch_pool_badwindow.bin");
    auto loaded = ReadSketchPool(path);
    EXPECT_FALSE(loaded.ok()) << test_case.what;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError)
        << test_case.what;
    EXPECT_NE(loaded.status().ToString().find("corrupt pool field header"),
              std::string::npos)
        << test_case.what << ": " << loaded.status().ToString();
    std::remove(path.c_str());
  }
}

TEST(PoolIoTest, SuccessfulWriteLeavesNoTempFile) {
  const table::Matrix data = RandomTable(16, 16, 4);
  const SketchPool pool = BuildSmallPool(data);
  const std::string path = TempPath("tabsketch_pool_atomic.bin");
  ASSERT_TRUE(WriteSketchPool(pool, path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temp file must be renamed away";
  std::remove(path.c_str());
}

TEST(PoolIoTest, OverwriteReplacesExistingFileAtomically) {
  // Writing over an existing pool goes through the temp file, so the
  // destination is either the old bytes or the complete new bytes — never a
  // half-written mix. After the second write the file must read back as the
  // second pool.
  const table::Matrix data1 = RandomTable(16, 16, 5);
  const table::Matrix data2 = RandomTable(16, 32, 6);
  const std::string path = TempPath("tabsketch_pool_overwrite.bin");
  ASSERT_TRUE(WriteSketchPool(BuildSmallPool(data1), path).ok());
  ASSERT_TRUE(WriteSketchPool(BuildSmallPool(data2), path).ok());
  auto loaded = ReadSketchPool(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->data_cols(), 32u);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(PoolIoTest, UnwritablePathFailsWithoutTempResidue) {
  const table::Matrix data = RandomTable(16, 16, 7);
  const SketchPool pool = BuildSmallPool(data);
  const std::string path =
      TempPath("no_such_dir_tabsketch") + "/pool.bin";
  EXPECT_FALSE(WriteSketchPool(pool, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(PoolFromPartsTest, RejectsEmptyFields) {
  EXPECT_FALSE(SketchPool::FromParts({.p = 1.0, .k = 2, .seed = 1}, 8, 8, {})
                   .ok());
}

TEST(PoolFromPartsTest, RejectsInvalidParams) {
  const table::Matrix data = RandomTable(8, 8, 3);
  const SketchPool pool = BuildSmallPool(data);
  std::map<std::pair<size_t, size_t>, SketchField> fields(
      pool.fields().begin(), pool.fields().end());
  EXPECT_FALSE(SketchPool::FromParts({.p = 0.0, .k = 2, .seed = 1}, 8, 8,
                                     std::move(fields))
                   .ok());
}

}  // namespace
}  // namespace tabsketch::core
