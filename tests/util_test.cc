#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/median.h"
#include "util/result.h"
#include "util/status.h"
#include "util/timer.h"

namespace tabsketch::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status status = Status::InvalidArgument("bad p");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad p");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  TABSKETCH_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  TABSKETCH_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_EQ(QuarterOf(6).status().code(), StatusCode::kInvalidArgument);
}

TEST(MedianTest, OddLength) {
  std::vector<double> values = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(MedianInPlace(values), 3.0);
}

TEST(MedianTest, EvenLengthAveragesMiddlePair) {
  std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(MedianInPlace(values), 2.5);
}

TEST(MedianTest, SingleElement) {
  std::vector<double> values = {7.5};
  EXPECT_DOUBLE_EQ(MedianInPlace(values), 7.5);
}

TEST(MedianTest, NonDestructiveVariantPreservesInput) {
  const std::vector<double> values = {9.0, 2.0, 7.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Median(values), 5.0);
  EXPECT_EQ(values, (std::vector<double>{9.0, 2.0, 7.0, 4.0, 5.0}));
}

TEST(MedianTest, MedianAbsDifference) {
  const std::vector<double> a = {1.0, 5.0, 10.0};
  const std::vector<double> b = {2.0, 2.0, 2.0};
  std::vector<double> scratch;
  // |diffs| = {1, 3, 8} -> median 3.
  EXPECT_DOUBLE_EQ(MedianAbsDifference(a, b, &scratch), 3.0);
  EXPECT_EQ(scratch.size(), 3u);
}

TEST(MedianTest, MedianWithDuplicates) {
  std::vector<double> values = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(MedianInPlace(values), 2.0);
}

TEST(MedianTest, NegativeValues) {
  std::vector<double> values = {-5.0, -1.0, -3.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(MedianInPlace(values), -1.0);
}

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double first = timer.ElapsedSeconds();
  const double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(CheckDeathTest, MedianOfEmptyAborts) {
  std::vector<double> empty;
  EXPECT_DEATH(MedianInPlace(empty), "median of empty range");
}

TEST(CheckDeathTest, MismatchedAbsDifferenceAborts) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  std::vector<double> scratch;
  EXPECT_DEATH(MedianAbsDifference(a, b, &scratch), "size mismatch");
}

}  // namespace
}  // namespace tabsketch::util
