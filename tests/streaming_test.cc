#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/growing.h"
#include "core/ondemand.h"
#include "core/quantized_sketch.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/table_io.h"
#include "table/tiling.h"
#include "util/status.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomPiece(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 100.0;
  return out;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Randomized append/retire schedules: the byte-identity property test.
// ---------------------------------------------------------------------------

/// One step of a streaming schedule. Appends carry a piece width and a data
/// seed; retires carry a requested tile-column count that execution clamps
/// to the live window (so any subsequence of a schedule is also a valid
/// schedule — the shrinker depends on that).
struct Op {
  bool retire = false;
  size_t amount = 0;
  uint64_t seed = 0;
};

std::string ScheduleToString(const std::vector<Op>& ops) {
  std::ostringstream os;
  os << "{";
  for (const Op& op : ops) {
    if (op.retire) {
      os << " retire(" << op.amount << ")";
    } else {
      os << " append(cols=" << op.amount << ", seed=" << op.seed << ")";
    }
  }
  os << " }";
  return os.str();
}

std::vector<Op> RandomSchedule(uint64_t seed, size_t length,
                               size_t tile_cols) {
  rng::Xoshiro256 gen(seed);
  std::vector<Op> ops;
  for (size_t i = 0; i < length; ++i) {
    Op op;
    // 1-in-3 retires; appends span sub-tile pieces (leaving pending
    // columns) through multi-tile-column pieces.
    op.retire = gen.Next() % 3 == 0;
    if (op.retire) {
      op.amount = gen.Next() % 3;  // clamped to the window at run time
    } else {
      op.amount = 1 + gen.Next() % (2 * tile_cols + tile_cols / 2);
      op.seed = gen.Next();
    }
    ops.push_back(op);
  }
  return ops;
}

constexpr size_t kRows = 10;
constexpr size_t kTileRows = 5;
constexpr size_t kTileCols = 4;

/// Runs `ops` against a GrowingTableSketcher and an eagerly re-stitched
/// shadow table, checking after every step that (a) the window table equals
/// the shadow's surviving region, (b) every completed tile sketch is
/// byte-identical to a fresh batch SketchAllTiles over that region, and
/// (c) sketches_computed() is exactly one computation per distinct tile
/// ever completed. Returns the first violation's description, or nullopt.
std::optional<std::string> CheckSchedule(const std::vector<Op>& ops,
                                         size_t threads) {
  SketchParams params{.p = 1.0, .k = 12, .seed = 77};
  auto store = GrowingTableSketcher::Create(params, kRows, kTileRows,
                                            kTileCols);
  if (!store.ok()) return store.status().ToString();
  auto sketcher = Sketcher::Create(params);
  if (!sketcher.ok()) return sketcher.status().ToString();

  // Shadow state: every column ever appended, and how many columns have
  // been retired off the front.
  std::vector<table::Matrix> pieces;
  size_t retired_cols = 0;

  for (size_t step = 0; step < ops.size(); ++step) {
    const Op& op = ops[step];
    std::ostringstream at;
    at << "step " << step << " of " << ScheduleToString(ops) << " threads="
       << threads << ": ";
    if (op.retire) {
      const size_t amount = store->grid_cols() == 0
                                ? 0
                                : op.amount % (store->grid_cols() + 1);
      const util::Status retired = store->RetireColumns(amount);
      if (!retired.ok()) return at.str() + retired.ToString();
      retired_cols += amount * kTileCols;
    } else {
      const table::Matrix piece = RandomPiece(kRows, op.amount, op.seed);
      const util::Status appended = store->AppendColumns(piece, threads);
      if (!appended.ok()) return at.str() + appended.ToString();
      pieces.push_back(piece);
    }

    // Re-stitch the surviving region from scratch.
    size_t total_cols = 0;
    for (const auto& piece : pieces) total_cols += piece.cols();
    const size_t surviving = total_cols - retired_cols;
    table::Matrix stitched(kRows, surviving);
    size_t offset = 0;  // column of the full stream being copied
    size_t written = 0;
    for (const auto& piece : pieces) {
      for (size_t c = 0; c < piece.cols(); ++c, ++offset) {
        if (offset < retired_cols) continue;
        for (size_t r = 0; r < kRows; ++r) {
          stitched.At(r, written) = piece.At(r, c);
        }
        ++written;
      }
    }

    if (store->table().cols() != surviving) {
      std::ostringstream os;
      os << at.str() << "window holds " << store->table().cols()
         << " cols, expected " << surviving;
      return os.str();
    }
    const std::span<const double> got = store->table().Values();
    const std::span<const double> want =
        std::as_const(stitched).Values();
    if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
      return at.str() + "window table bytes diverge from the stitched table";
    }

    // Batch reference over the surviving region (TileGrid ignores trailing
    // pending columns exactly like the store does).
    const size_t expect_tiles =
        (kRows / kTileRows) * (surviving / kTileCols);
    if (store->num_tiles() != expect_tiles) {
      std::ostringstream os;
      os << at.str() << "store holds " << store->num_tiles()
         << " tiles, expected " << expect_tiles;
      return os.str();
    }
    if (expect_tiles > 0) {
      auto grid = table::TileGrid::Create(&stitched, kTileRows, kTileCols);
      if (!grid.ok()) return at.str() + grid.status().ToString();
      const std::vector<Sketch> reference = SketchAllTiles(*sketcher, *grid);
      const std::vector<Sketch> incremental = store->SketchesInGridOrder();
      for (size_t t = 0; t < reference.size(); ++t) {
        if (reference[t].values != incremental[t].values) {
          std::ostringstream os;
          os << at.str() << "tile " << t
             << " sketch bytes diverge from the batch reference";
          return os.str();
        }
      }
    }

    const size_t expected_computed =
        store->grid_rows() *
        (store->grid_cols() + store->retired_tile_cols());
    if (store->sketches_computed() != expected_computed) {
      std::ostringstream os;
      os << at.str() << "sketches_computed=" << store->sketches_computed()
         << ", expected exactly one per distinct tile ever completed ("
         << expected_computed << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

/// Greedy delta-debugging: drop one op at a time while the failure
/// persists, so the logged reproducer is (1-minimal) small.
std::vector<Op> ShrinkSchedule(std::vector<Op> ops, size_t threads) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t i = 0; i < ops.size(); ++i) {
      std::vector<Op> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (CheckSchedule(candidate, threads).has_value()) {
        ops = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return ops;
}

TEST(StreamingPropertyTest, RandomSchedulesMatchBatchSketching) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{5}}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      const std::vector<Op> ops = RandomSchedule(seed, 12, kTileCols);
      const std::optional<std::string> failure =
          CheckSchedule(ops, threads);
      if (failure.has_value()) {
        const std::vector<Op> minimal = ShrinkSchedule(ops, threads);
        FAIL() << *failure << "\nminimal failing schedule (seed " << seed
               << ", threads " << threads
               << "): " << ScheduleToString(minimal) << "\nfirst failure: "
               << CheckSchedule(minimal, threads).value_or("(gone)");
      }
    }
  }
}

TEST(StreamingPropertyTest, ThreadCountsAgreeByteForByte) {
  // The same schedule under different thread counts must yield identical
  // sketch bytes (ParallelFor writes fixed slots; no reduction order).
  const std::vector<Op> ops = RandomSchedule(99, 10, kTileCols);
  SketchParams params{.p = 0.5, .k = 16, .seed = 3};
  std::vector<std::vector<Sketch>> runs;
  for (const size_t threads : {size_t{1}, size_t{3}, size_t{7}}) {
    auto store =
        GrowingTableSketcher::Create(params, kRows, kTileRows, kTileCols);
    ASSERT_TRUE(store.ok());
    for (const Op& op : ops) {
      if (op.retire) {
        const size_t amount = store->grid_cols() == 0
                                  ? 0
                                  : op.amount % (store->grid_cols() + 1);
        ASSERT_TRUE(store->RetireColumns(amount).ok());
      } else {
        ASSERT_TRUE(
            store->AppendColumns(RandomPiece(kRows, op.amount, op.seed),
                                 threads)
                .ok());
      }
    }
    runs.push_back(store->SketchesInGridOrder());
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  ASSERT_EQ(runs[0].size(), runs[2].size());
  for (size_t t = 0; t < runs[0].size(); ++t) {
    EXPECT_EQ(runs[0][t].values, runs[1][t].values) << "tile " << t;
    EXPECT_EQ(runs[0][t].values, runs[2][t].values) << "tile " << t;
  }
}

TEST(StreamingRetireTest, EmptyingTheWindowAndRegrowing) {
  SketchParams params{.p = 1.0, .k = 8, .seed = 11};
  auto store = GrowingTableSketcher::Create(params, kRows, kTileRows,
                                            kTileCols);
  ASSERT_TRUE(store.ok());
  // Two complete tile columns plus one pending column.
  ASSERT_TRUE(
      store->AppendColumns(RandomPiece(kRows, 2 * kTileCols + 1, 5)).ok());
  ASSERT_EQ(store->grid_cols(), 2u);
  ASSERT_EQ(store->pending_cols(), 1u);

  ASSERT_TRUE(store->RetireColumns(2).ok());
  EXPECT_EQ(store->grid_cols(), 0u);
  EXPECT_EQ(store->num_tiles(), 0u);
  EXPECT_EQ(store->pending_cols(), 1u);  // pending columns survive a retire
  EXPECT_EQ(store->retired_tile_cols(), 2u);

  // Growing again completes a tile column that spans the pending column.
  ASSERT_TRUE(store->AppendColumns(RandomPiece(kRows, kTileCols, 6)).ok());
  EXPECT_EQ(store->grid_cols(), 1u);
  EXPECT_EQ(store->pending_cols(), 1u);
  // 2 tile rows x (1 live + 2 retired) tile columns, each sketched once.
  EXPECT_EQ(store->sketches_computed(), 6u);
}

TEST(StreamingRetireTest, RetireValidation) {
  SketchParams params{.p = 1.0, .k = 8, .seed = 11};
  auto store = GrowingTableSketcher::Create(params, kRows, kTileRows,
                                            kTileCols);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->AppendColumns(RandomPiece(kRows, kTileCols, 5)).ok());
  const util::Status too_many = store->RetireColumns(2);
  EXPECT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(store->RetireColumns(0).ok());  // no-op
  EXPECT_EQ(store->grid_cols(), 1u);
}

// ---------------------------------------------------------------------------
// Incremental code pools (QuantizedCodePool::BuildSuccessor).
// ---------------------------------------------------------------------------

std::vector<Sketch> HandSketches(size_t count, size_t k) {
  std::vector<Sketch> sketches(count);
  for (size_t s = 0; s < count; ++s) {
    sketches[s].values.resize(k);
    for (size_t j = 0; j < k; ++j) {
      sketches[s].values[j] =
          static_cast<double>(s) * 1.5 + static_cast<double>(j) * 0.25 - 2.0;
    }
  }
  return sketches;
}

std::function<std::span<const double>(size_t)> GetterOver(
    const std::vector<Sketch>& sketches) {
  return [&sketches](size_t i) -> std::span<const double> {
    return sketches[i].values;
  };
}

constexpr SketchParams kPoolParams{.p = 1.0, .k = 6, .seed = 9};

TEST(BuildSuccessorTest, SurvivingRowsAreByteCopies) {
  const std::vector<Sketch> base_sketches = HandSketches(6, kPoolParams.k);
  auto base = QuantizedCodePool::BuildFromGetter(
      GetterOver(base_sketches), 6, QuantKind::kInt8, kPoolParams, 5, 4);
  ASSERT_TRUE(base.ok());

  // A retire of one tile column in a 2x3 grid: survivors are base tiles
  // {1, 2, 4, 5} laid out as a 2x2 grid.
  const std::vector<Sketch> window = {base_sketches[1], base_sketches[2],
                                      base_sketches[4], base_sketches[5]};
  const std::vector<size_t> base_of = {1, 2, 4, 5};
  bool rebuilt = true;
  auto successor = QuantizedCodePool::BuildSuccessor(
      *base, GetterOver(window), base_of, &rebuilt);
  ASSERT_TRUE(successor.ok());
  EXPECT_FALSE(rebuilt);
  EXPECT_EQ(successor->scale(), base->scale());
  EXPECT_EQ(successor->offset(), base->offset());
  ASSERT_EQ(successor->count(), 4u);
  const size_t row = kPoolParams.k * QuantCodeBytes(QuantKind::kInt8);
  for (size_t i = 0; i < base_of.size(); ++i) {
    EXPECT_EQ(std::vector<unsigned char>(
                  successor->raw_codes().begin() +
                      static_cast<ptrdiff_t>(i * row),
                  successor->raw_codes().begin() +
                      static_cast<ptrdiff_t>((i + 1) * row)),
              std::vector<unsigned char>(
                  base->raw_codes().begin() +
                      static_cast<ptrdiff_t>(base_of[i] * row),
                  base->raw_codes().begin() +
                      static_cast<ptrdiff_t>((base_of[i] + 1) * row)))
        << "successor row " << i;
  }
}

TEST(BuildSuccessorTest, InRangeAppendMatchesFreshBuild) {
  // New tiles whose values stay inside the base range: the map survives,
  // and because min/max are unchanged a from-scratch build derives the
  // same map — so all bytes must match the fresh build exactly.
  std::vector<Sketch> window = HandSketches(4, kPoolParams.k);
  auto base = QuantizedCodePool::BuildFromGetter(
      GetterOver(window), 4, QuantKind::kInt16, kPoolParams, 5, 4);
  ASSERT_TRUE(base.ok());

  Sketch inside;  // strictly between the existing min and max
  inside.values.assign(kPoolParams.k, 0.5);
  window.push_back(inside);
  std::vector<size_t> base_of = {0, 1, 2, 3,
                                 QuantizedCodePool::kNewTile};
  bool rebuilt = true;
  auto successor = QuantizedCodePool::BuildSuccessor(
      *base, GetterOver(window), base_of, &rebuilt);
  ASSERT_TRUE(successor.ok());
  EXPECT_FALSE(rebuilt);

  auto fresh = QuantizedCodePool::BuildFromGetter(
      GetterOver(window), window.size(), QuantKind::kInt16, kPoolParams, 5,
      4);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(successor->scale(), fresh->scale());
  EXPECT_EQ(successor->offset(), fresh->offset());
  EXPECT_EQ(successor->raw_codes(), fresh->raw_codes());
  EXPECT_EQ(successor->usable_flags(), fresh->usable_flags());
}

TEST(BuildSuccessorTest, RangeGrowthRebuildsTheMap) {
  std::vector<Sketch> window = HandSketches(4, kPoolParams.k);
  auto base = QuantizedCodePool::BuildFromGetter(
      GetterOver(window), 4, QuantKind::kInt8, kPoolParams, 5, 4);
  ASSERT_TRUE(base.ok());

  Sketch outlier;  // far beyond the base max: the pool range grew
  outlier.values.assign(kPoolParams.k, 1000.0);
  window.push_back(outlier);
  std::vector<size_t> base_of = {0, 1, 2, 3,
                                 QuantizedCodePool::kNewTile};
  bool rebuilt = false;
  auto successor = QuantizedCodePool::BuildSuccessor(
      *base, GetterOver(window), base_of, &rebuilt);
  ASSERT_TRUE(successor.ok());
  EXPECT_TRUE(rebuilt);

  auto fresh = QuantizedCodePool::BuildFromGetter(
      GetterOver(window), window.size(), QuantKind::kInt8, kPoolParams, 5,
      4);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(successor->scale(), fresh->scale());
  EXPECT_EQ(successor->offset(), fresh->offset());
  EXPECT_EQ(successor->raw_codes(), fresh->raw_codes());
  EXPECT_EQ(successor->usable_flags(), fresh->usable_flags());
}

TEST(BuildSuccessorTest, NonFiniteNewTileStaysUnusableWithoutRebuild) {
  std::vector<Sketch> window = HandSketches(4, kPoolParams.k);
  auto base = QuantizedCodePool::BuildFromGetter(
      GetterOver(window), 4, QuantKind::kInt8, kPoolParams, 5, 4);
  ASSERT_TRUE(base.ok());

  Sketch bad;  // non-finite sketches are map-independent: never a rebuild
  bad.values.assign(kPoolParams.k, 1e6);
  bad.values[2] = std::nan("");
  window.push_back(bad);
  std::vector<size_t> base_of = {0, 1, 2, 3,
                                 QuantizedCodePool::kNewTile};
  bool rebuilt = true;
  auto successor = QuantizedCodePool::BuildSuccessor(
      *base, GetterOver(window), base_of, &rebuilt);
  ASSERT_TRUE(successor.ok());
  EXPECT_FALSE(rebuilt);
  EXPECT_EQ(successor->scale(), base->scale());
  EXPECT_FALSE(successor->tile_usable(4));
  const size_t row = kPoolParams.k * QuantCodeBytes(QuantKind::kInt8);
  for (size_t b = 4 * row; b < 5 * row; ++b) {
    ASSERT_EQ(successor->raw_codes()[b], 0u) << "byte " << b;
  }
}

TEST(BuildSuccessorTest, RejectsOutOfRangeBaseIndex) {
  const std::vector<Sketch> window = HandSketches(2, kPoolParams.k);
  auto base = QuantizedCodePool::BuildFromGetter(
      GetterOver(window), 2, QuantKind::kInt8, kPoolParams, 5, 4);
  ASSERT_TRUE(base.ok());
  const std::vector<size_t> base_of = {0, 7};  // 7 is not a base tile
  bool rebuilt = false;
  auto successor = QuantizedCodePool::BuildSuccessor(
      *base, GetterOver(window), base_of, &rebuilt);
  EXPECT_FALSE(successor.ok());
  EXPECT_EQ(successor.status().code(), util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// The golden append piece (the format `append` and `tabsketch ingest` read).
// ---------------------------------------------------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(TABSKETCH_TEST_GOLDEN_DIR) + "/" + name;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(AppendPieceGoldenTest, ParsesThePinnedFixture) {
  auto piece = table::ReadBinary(GoldenPath("append_piece_v1.tbl"));
  ASSERT_TRUE(piece.ok()) << piece.status().ToString();
  ASSERT_EQ(piece->rows(), 4u);
  ASSERT_EQ(piece->cols(), 3u);
  for (size_t r = 0; r < piece->rows(); ++r) {
    for (size_t c = 0; c < piece->cols(); ++c) {
      EXPECT_EQ(piece->At(r, c), static_cast<double>(r) * 2.0 +
                                     static_cast<double>(c) * 0.5 - 4.0);
    }
  }
}

TEST(AppendPieceGoldenTest, TruncatedPieceIsAnError) {
  std::vector<char> bytes = ReadAllBytes(GoldenPath("append_piece_v1.tbl"));
  bytes.resize(bytes.size() - 5);  // cut into the last double
  const std::string path = TempPath("streaming_truncated_piece.tbl");
  WriteAllBytes(path, bytes);
  auto piece = table::ReadBinary(path);
  EXPECT_FALSE(piece.ok());
  EXPECT_EQ(piece.status().code(), util::StatusCode::kIOError);
  std::filesystem::remove(path);
}

TEST(AppendPieceGoldenTest, CorruptedMagicIsAnError) {
  std::vector<char> bytes = ReadAllBytes(GoldenPath("append_piece_v1.tbl"));
  bytes[0] = 'X';
  const std::string path = TempPath("streaming_corrupt_piece.tbl");
  WriteAllBytes(path, bytes);
  auto piece = table::ReadBinary(path);
  EXPECT_FALSE(piece.ok());
  EXPECT_EQ(piece.status().code(), util::StatusCode::kIOError);
  std::filesystem::remove(path);
}

TEST(AppendPieceGoldenTest, RowMismatchIsRejectedByTheStore) {
  auto piece = table::ReadBinary(GoldenPath("append_piece_v1.tbl"));
  ASSERT_TRUE(piece.ok());
  // The fixture has 4 rows; a 10-row store must refuse it.
  auto store = GrowingTableSketcher::Create({.p = 1.0, .k = 4, .seed = 1},
                                            kRows, kTileRows, kTileCols);
  ASSERT_TRUE(store.ok());
  const util::Status appended = store->AppendColumns(*piece);
  EXPECT_FALSE(appended.ok());
  EXPECT_EQ(appended.code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tabsketch::core
