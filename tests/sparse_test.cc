// Very sparse stable projections (Ping Li; DESIGN.md Section 16):
//   - counter-based derivation: the sparse gate + rescale primitive, its
//     dense (sparsity = 1) bit-identity, and O(1) random access agreeing
//     with bulk generation;
//   - CSR-style kernels: Dense() reproduces StableRandomMatrix bit-for-bit
//     and the O(nnz) correlation paths match the dense walks bit-for-bit;
//   - deterministic FFT-vs-direct path selection and the resulting
//     thread-count byte-identity of sparse pools;
//   - the empirical (eps, delta) envelope of sparse families on the same
//     swept guarantee grid the dense families pass.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/series_sketch.h"
#include "core/sketch_pool.h"
#include "core/sketcher.h"
#include "core/sparse_kernel.h"
#include "core/stable_matrix.h"
#include "fft/correlate.h"
#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& v : out.Values()) v = gen.NextDouble() * 20.0 - 10.0;
  return out;
}

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  std::vector<double> out(n);
  for (double& v : out) v = gen.NextDouble() * 20.0 - 10.0;
  return out;
}

// --- counter-based derivation -----------------------------------------------

TEST(SparseStableTest, DenseSparsityIsBitIdenticalToDenseDraw) {
  // sparsity = 1 must short-circuit to the legacy dense draw, bit for bit:
  // every pre-sparsity family is the sparsity = 1 case of the new tier.
  for (const double alpha : {0.5, 1.0, 1.3, 2.0}) {
    for (uint64_t seed = 0; seed < 64; ++seed) {
      EXPECT_EQ(rng::SampleSparseStableAt(alpha, 1.0, seed),
                rng::SampleStableAt(alpha, seed))
          << "alpha=" << alpha << " seed=" << seed;
    }
  }
}

TEST(SparseStableTest, NonzeroDrawsAreRescaledDenseDraws) {
  // A surviving entry is the dense draw times sparsity^(-1/alpha); nothing
  // else about the value changes, so magnitude and membership stay
  // independently derived from the seed.
  const double alpha = 1.0, sparsity = 0.3;
  const double rescale = std::pow(sparsity, -1.0 / alpha);
  size_t nonzero = 0;
  constexpr uint64_t kSeeds = 20000;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const double value = rng::SampleSparseStableAt(alpha, sparsity, seed);
    if (value == 0.0) continue;
    ++nonzero;
    EXPECT_DOUBLE_EQ(value, rng::SampleStableAt(alpha, seed) * rescale);
  }
  // Support frequency tracks the gate probability (binomial noise on 20000
  // draws is ~0.3% at this level).
  const double rate = static_cast<double>(nonzero) / kSeeds;
  EXPECT_NEAR(rate, sparsity, 0.02);
}

TEST(SparseStableTest, RandomAccessMatchesBulkGeneration) {
  // StableEntry (the O(1) random-access primitive behind streaming updates)
  // and StableRandomMatrix (bulk generation) must agree bit-for-bit for
  // sparse families, exactly as they do for dense ones.
  const core::SketchParams params{
      .p = 1.0, .k = 3, .seed = 99, .sparsity = 0.2};
  for (size_t index = 0; index < params.k; ++index) {
    const table::Matrix bulk =
        core::StableRandomMatrix(params, index, 6, 9);
    for (size_t r = 0; r < 6; ++r) {
      for (size_t c = 0; c < 9; ++c) {
        EXPECT_EQ(core::StableEntry(params, index, 6, 9, r, c),
                  bulk.At(r, c))
            << "index=" << index << " (" << r << "," << c << ")";
      }
    }
  }
}

// --- CSR kernels ------------------------------------------------------------

TEST(SparseKernelTest, DenseReconstructionIsBitIdentical) {
  const core::SketchParams params{
      .p = 1.5, .k = 4, .seed = 7, .sparsity = 0.25};
  for (size_t index = 0; index < params.k; ++index) {
    const core::SparseKernel kernel =
        core::SparseStableKernel(params, index, 8, 8);
    const table::Matrix dense = kernel.Dense();
    const table::Matrix bulk = core::StableRandomMatrix(params, index, 8, 8);
    ASSERT_EQ(dense.rows(), bulk.rows());
    ASSERT_EQ(dense.cols(), bulk.cols());
    for (size_t r = 0; r < 8; ++r) {
      for (size_t c = 0; c < 8; ++c) {
        EXPECT_EQ(dense.At(r, c), bulk.At(r, c));
      }
    }
  }
}

TEST(SparseKernelTest, DenseFamilyKernelKeepsEveryEntry) {
  const core::SketchParams params{.p = 1.0, .k = 1, .seed = 3};
  const core::SparseKernel kernel =
      core::SparseStableKernel(params, 0, 5, 4);
  // SaS draws are continuous: a dense family's kernel is all-nonzero.
  EXPECT_EQ(kernel.nnz(), 20u);
}

TEST(SparseKernelTest, SparseCorrelationMatchesNaiveDenseBitForBit) {
  // The documented contract: per output element the sparse walk accumulates
  // in row-major storage order, so skipping exact zeros gives the same bits
  // as the dense naive correlation.
  const core::SketchParams params{
      .p = 1.0, .k = 2, .seed = 21, .sparsity = 0.3};
  const table::Matrix data = RandomTable(12, 10, 5);
  for (size_t index = 0; index < params.k; ++index) {
    const core::SparseKernel kernel =
        core::SparseStableKernel(params, index, 3, 4);
    const table::Matrix sparse = core::CrossCorrelateSparse(data, kernel);
    const table::Matrix naive =
        fft::CrossCorrelateNaive(data, kernel.Dense());
    ASSERT_EQ(sparse.rows(), naive.rows());
    ASSERT_EQ(sparse.cols(), naive.cols());
    for (size_t r = 0; r < sparse.rows(); ++r) {
      for (size_t c = 0; c < sparse.cols(); ++c) {
        EXPECT_EQ(sparse.At(r, c), naive.At(r, c))
            << "index=" << index << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(SparseKernelTest, PathSelectionIsDeterministicInSizesOnly) {
  // A near-empty kernel over many positions beats the FFT; a full kernel
  // over a padded grid does not. The rule depends only on (nnz, positions,
  // data shape) — asserting both directions pins the cost model's sign.
  EXPECT_TRUE(core::PreferSparsePath(/*nnz=*/2, /*positions=*/100, 64, 64));
  EXPECT_FALSE(
      core::PreferSparsePath(/*nnz=*/4096, /*positions=*/3969, 64, 64));
  // Same inputs, same answer: the selection is a pure function.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(core::PreferSparsePath(2, 100, 64, 64));
  }
}

// --- sketcher integration ---------------------------------------------------

TEST(SparseSketcherTest, SketchOfMatchesDenseKernelWalk) {
  // A sparse family's single-tile sketch equals the row-major dot product
  // against the densified kernels, bit for bit.
  const core::SketchParams params{
      .p = 0.5, .k = 5, .seed = 17, .sparsity = 0.4};
  auto sketcher = core::Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(7, 9, 11);
  const core::Sketch sketch = sketcher->SketchOf(data.View());
  ASSERT_EQ(sketch.size(), params.k);
  for (size_t i = 0; i < params.k; ++i) {
    const table::Matrix dense =
        core::SparseStableKernel(params, i, 7, 9).Dense();
    double acc = 0.0;
    for (size_t r = 0; r < 7; ++r) {
      for (size_t c = 0; c < 9; ++c) {
        acc += data.At(r, c) * dense.At(r, c);
      }
    }
    EXPECT_EQ(sketch.values[i], acc) << "component " << i;
  }
}

TEST(SparseSketcherTest, AllAlgorithmsAgreeOnSparseFields) {
  const core::SketchParams params{
      .p = 1.0, .k = 6, .seed = 29, .sparsity = 0.15};
  auto sketcher = core::Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(24, 20, 31);
  auto naive = sketcher->SketchAllPositions(data, 4, 5,
                                            core::SketchAlgorithm::kNaive);
  auto fft = sketcher->SketchAllPositions(data, 4, 5,
                                          core::SketchAlgorithm::kFft);
  auto auto_path = sketcher->SketchAllPositions(data, 4, 5,
                                                core::SketchAlgorithm::kAuto);
  ASSERT_TRUE(naive.ok() && fft.ok() && auto_path.ok());
  for (size_t r = 0; r < naive->position_rows(); ++r) {
    for (size_t c = 0; c < naive->position_cols(); ++c) {
      const core::Sketch sn = naive->SketchAt(r, c);
      const core::Sketch sf = fft->SketchAt(r, c);
      const core::Sketch sa = auto_path->SketchAt(r, c);
      for (size_t i = 0; i < params.k; ++i) {
        EXPECT_NEAR(sf.values[i], sn.values[i], 1e-9);
        EXPECT_NEAR(sa.values[i], sn.values[i], 1e-9);
      }
    }
  }
}

TEST(SparseSeriesSketcherTest, AllAlgorithmsAgreeOnSparseFields) {
  const core::SketchParams params{
      .p = 1.0, .k = 5, .seed = 41, .sparsity = 0.2};
  auto sketcher = core::SeriesSketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const std::vector<double> series = RandomSeries(160, 43);
  auto naive = sketcher->SketchAllPositions(series, 12,
                                            core::SketchAlgorithm::kNaive);
  auto fft = sketcher->SketchAllPositions(series, 12,
                                          core::SketchAlgorithm::kFft);
  auto auto_path = sketcher->SketchAllPositions(
      series, 12, core::SketchAlgorithm::kAuto);
  ASSERT_TRUE(naive.ok() && fft.ok() && auto_path.ok());
  for (size_t pos = 0; pos < naive->positions(); ++pos) {
    const core::Sketch sn = naive->SketchAt(pos);
    const core::Sketch sf = fft->SketchAt(pos);
    const core::Sketch sa = auto_path->SketchAt(pos);
    for (size_t i = 0; i < params.k; ++i) {
      EXPECT_NEAR(sf.values[i], sn.values[i], 1e-9);
      EXPECT_NEAR(sa.values[i], sn.values[i], 1e-9);
    }
  }
}

// --- pool byte-identity across thread counts --------------------------------

TEST(SparsePoolTest, BuildIsBitIdenticalAcrossThreadCounts) {
  // Path selection depends only on sizes and nnz, and each (size, kernel)
  // work item is computed identically regardless of which worker runs it —
  // so the pool's bytes cannot depend on the thread count.
  const table::Matrix data = RandomTable(32, 32, 47);
  const core::SketchParams params{
      .p = 1.0, .k = 8, .seed = 53, .sparsity = 0.1};
  core::PoolOptions options;
  options.log2_min_rows = 2;
  options.log2_min_cols = 2;
  options.threads = 1;
  auto reference = core::SketchPool::Build(data, params, options);
  ASSERT_TRUE(reference.ok());
  for (const size_t threads : {2u, 3u, 8u}) {
    options.threads = threads;
    auto pool = core::SketchPool::Build(data, params, options);
    ASSERT_TRUE(pool.ok());
    ASSERT_EQ(pool->CanonicalSizes(), reference->CanonicalSizes());
    for (const auto& [shape, field] : reference->fields()) {
      const auto it = pool->fields().find(shape);
      ASSERT_NE(it, pool->fields().end());
      for (size_t plane = 0; plane < field.k(); ++plane) {
        const auto got = it->second.plane(plane).Values();
        const auto want = field.plane(plane).Values();
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i], want[i])
              << "threads=" << threads << " plane=" << plane << " i=" << i;
        }
      }
    }
  }
}

TEST(SparsePoolTest, SparseQueriesStayComparableToDirectSketches) {
  // Canonical pool sketches of a sparse family must equal the single-tile
  // sketcher's output for the same window — the cross-producer invariant
  // that makes pools, saved sketch sets and on-demand sketching mutually
  // comparable within one family.
  const table::Matrix data = RandomTable(16, 16, 59);
  const core::SketchParams params{
      .p = 1.0, .k = 4, .seed = 61, .sparsity = 0.3};
  core::PoolOptions options;
  options.log2_min_rows = 2;
  options.log2_min_cols = 2;
  auto pool = core::SketchPool::Build(data, params, options);
  auto sketcher = core::Sketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());
  auto canonical = pool->CanonicalSketchAt(3, 5, 4, 4);
  ASSERT_TRUE(canonical.ok());
  const core::Sketch direct = sketcher->SketchOf(data.Window(3, 5, 4, 4));
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(canonical->values[i], direct.values[i], 1e-9) << i;
  }
}

// --- (eps, delta) envelope on the swept guarantee grid ----------------------

/// Sparse counterpart of guarantees_test.cc's EpsilonDeltaGridTest: the same
/// coverage demand, swept over (p, sparsity). Li's analysis (DESIGN.md
/// Section 16) bounds the extra estimator noise of a sparsity-s family by
/// s^(-1/2) in the eps constant for data whose mass is spread over many
/// cells, so the demanded band is eps = C(p)/sqrt(k) * s^(-1/2). For the
/// spread-out random tables used here the empirical inflation is far
/// smaller; the test pins the guarantee, not the typical case.
class SparseEpsilonDeltaGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SparseEpsilonDeltaGridTest, CoverageMeetsDelta) {
  const double p = std::get<0>(GetParam());
  const double sparsity = std::get<1>(GetParam());
  constexpr size_t kK = 400;
  const double c = (p < 0.75) ? 6.0 : 4.0;
  const double eps =
      c / std::sqrt(static_cast<double>(kK)) / std::sqrt(sparsity);
  constexpr int kTrials = 120;
  constexpr double kDelta = 0.15;  // 1 - delta = 85% demanded coverage

  rng::Xoshiro256 gen(2027);
  table::Matrix x(12, 12), y(12, 12);
  for (double& v : x.Values()) v = gen.NextDouble() * 100.0;
  for (double& v : y.Values()) v = gen.NextDouble() * 100.0;
  const double exact = core::LpDistance(x.View(), y.View(), p);

  int inside = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    core::SketchParams params{.p = p, .k = kK,
                              .seed = 7000 + static_cast<uint64_t>(trial),
                              .sparsity = sparsity};
    auto sketcher = core::Sketcher::Create(params);
    auto estimator = core::DistanceEstimator::Create(params);
    ASSERT_TRUE(sketcher.ok() && estimator.ok());
    const double approx = estimator->Estimate(
        sketcher->SketchOf(x.View()), sketcher->SketchOf(y.View()));
    if (std::fabs(approx / exact - 1.0) <= eps) ++inside;
  }
  EXPECT_GE(static_cast<double>(inside) / kTrials, 1.0 - kDelta)
      << "p=" << p << " sparsity=" << sparsity << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    PsGrid, SparseEpsilonDeltaGridTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(0.5, 0.1)),
    [](const auto& info) {
      const double p = std::get<0>(info.param);
      const double s = std::get<1>(info.param);
      std::string name = "p";
      name += (p == 0.5) ? "05" : (p == 1.0 ? "1" : "2");
      name += (s == 0.5) ? "s05" : "s01";
      return name;
    });

}  // namespace
}  // namespace tabsketch
