#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "table/matrix.h"
#include "table/table_io.h"
#include "table/tiling.h"

namespace tabsketch::table {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (double value : m.Values()) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(MatrixTest, FromVectorAndAccess) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  m(1, 1) = 55.0;
  EXPECT_DOUBLE_EQ(m.At(1, 1), 55.0);
}

TEST(MatrixTest, RowSpans) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  auto row = m.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  row[0] = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 0), -4.0);
}

TEST(MatrixTest, FillAndEquality) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.Fill(7.0);
  EXPECT_FALSE(a == b);
  b.Fill(7.0);
  EXPECT_TRUE(a == b);
}

TEST(MatrixDeathTest, VectorSizeMismatchAborts) {
  EXPECT_DEATH(Matrix(2, 2, {1.0, 2.0, 3.0}), "value count");
}

TEST(TableViewTest, FullView) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  TableView view = m.View();
  EXPECT_EQ(view.rows(), 2u);
  EXPECT_EQ(view.cols(), 3u);
  EXPECT_DOUBLE_EQ(view(1, 2), 6.0);
}

TEST(TableViewTest, WindowSeesParentStorage) {
  Matrix m(4, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = static_cast<double>(10 * r + c);
  }
  TableView window = m.Window(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(window(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(window(0, 1), 13.0);
  EXPECT_DOUBLE_EQ(window(1, 0), 22.0);
  EXPECT_DOUBLE_EQ(window(1, 1), 23.0);
}

TEST(TableViewTest, LinearizeIsRowMajor) {
  Matrix m(3, 3, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<double> out;
  m.Window(1, 1, 2, 2).Linearize(&out);
  EXPECT_EQ(out, (std::vector<double>{4, 5, 7, 8}));
}

TEST(TableViewTest, ToMatrixCopies) {
  Matrix m(3, 3, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  Matrix copy = m.Window(0, 1, 2, 2).ToMatrix();
  EXPECT_EQ(copy, Matrix(2, 2, {1, 2, 4, 5}));
}

TEST(TableViewDeathTest, OutOfBoundsWindowAborts) {
  Matrix m(4, 4);
  EXPECT_DEATH(m.Window(2, 2, 3, 1), "exceeds");
}

TEST(TileGridTest, ExactPartition) {
  Matrix m(8, 12);
  auto grid = TileGrid::Create(&m, 4, 3);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->grid_rows(), 2u);
  EXPECT_EQ(grid->grid_cols(), 4u);
  EXPECT_EQ(grid->num_tiles(), 8u);
  EXPECT_EQ(grid->tile_size(), 12u);
}

TEST(TileGridTest, TrailingRemainderIgnored) {
  Matrix m(10, 10);
  auto grid = TileGrid::Create(&m, 4, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->grid_rows(), 2u);
  EXPECT_EQ(grid->grid_cols(), 2u);
}

TEST(TileGridTest, TileOriginsAndContents) {
  Matrix m(4, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = static_cast<double>(10 * r + c);
  }
  auto grid = TileGrid::Create(&m, 2, 2);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->num_tiles(), 4u);
  EXPECT_EQ(grid->TileOriginRow(3), 2u);
  EXPECT_EQ(grid->TileOriginCol(3), 2u);
  TableView tile = grid->Tile(3);
  EXPECT_DOUBLE_EQ(tile(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(tile(1, 1), 33.0);
}

TEST(TileGridTest, RejectsBadTileSizes) {
  Matrix m(4, 4);
  EXPECT_FALSE(TileGrid::Create(&m, 0, 2).ok());
  EXPECT_FALSE(TileGrid::Create(&m, 5, 2).ok());
  EXPECT_FALSE(TileGrid::Create(&m, 2, 5).ok());
}

TEST(TableIoTest, BinaryRoundTrip) {
  Matrix m(3, 5);
  for (size_t i = 0; i < m.Values().size(); ++i) {
    m.Values()[i] = static_cast<double>(i) * 1.5 - 2.0;
  }
  const std::string path = TempPath("tabsketch_io_test.tbl");
  ASSERT_TRUE(WriteBinary(m, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == m);
  std::remove(path.c_str());
}

TEST(TableIoTest, BinaryRejectsGarbage) {
  const std::string path = TempPath("tabsketch_io_garbage.tbl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a table";
  }
  auto loaded = ReadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(TableIoTest, BinaryMissingFile) {
  auto loaded = ReadBinary(TempPath("no_such_file_xyz.tbl"));
  EXPECT_FALSE(loaded.ok());
}

TEST(TableIoTest, CsvRoundTrip) {
  Matrix m(2, 3, {1.25, -2.5, 3.0, 0.0, 1e6, -7.125});
  const std::string path = TempPath("tabsketch_io_test.csv");
  ASSERT_TRUE(WriteCsv(m, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == m);
  std::remove(path.c_str());
}

TEST(TableIoTest, CsvRejectsRaggedRows) {
  const std::string path = TempPath("tabsketch_io_ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2,3\n4,5\n";
  }
  auto loaded = ReadCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(TableIoTest, CsvRejectsNonNumeric) {
  const std::string path = TempPath("tabsketch_io_alpha.csv");
  {
    std::ofstream out(path);
    out << "1,banana\n";
  }
  auto loaded = ReadCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabsketch::table
