// Tests for the flight recorder: record/export round-trips, ring wraparound
// with drop accounting, multi-thread interleaving, the span/instant macro
// plumbing, and validity of the exported Chrome trace-event JSON.

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/trace_recorder.h"

namespace tabsketch {
namespace {

using ::tabsketch::testing::JsonChecker;
using util::MetricsRegistry;
using util::TraceRecorder;

/// Restores global observability state on scope exit — tests in this binary
/// share the process-wide registry and recorder singletons.
class GlobalObservabilityGuard {
 public:
  GlobalObservabilityGuard() : was_enabled_(MetricsRegistry::Enabled()) {}
  ~GlobalObservabilityGuard() {
    TraceRecorder::Global().Stop();
    MetricsRegistry::SetEnabled(was_enabled_);
    MetricsRegistry::Global().ResetValues();
  }

 private:
  bool was_enabled_;
};

TEST(TraceRecorderTest, EmptyRecordingExportsValidJson) {
  TraceRecorder recorder;
  recorder.Start(16);
  recorder.Stop();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  std::ostringstream os;
  recorder.WriteChromeJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"tabsketch-trace-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST(TraceRecorderTest, RecordsCompleteAndInstantEvents) {
  TraceRecorder recorder;
  recorder.Start(16);
  recorder.RecordComplete("alpha", 100, 50);
  recorder.RecordInstant("beta", /*has_value=*/true, 7.0);
  recorder.RecordInstant("gamma");
  recorder.Stop();
  EXPECT_EQ(recorder.recorded(), 3u);

  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].second.name, "alpha");
  EXPECT_EQ(events[0].second.phase, 'X');
  EXPECT_EQ(events[0].second.ts_ns, 100u);
  EXPECT_EQ(events[0].second.dur_ns, 50u);
  EXPECT_EQ(events[1].second.phase, 'i');
  EXPECT_TRUE(events[1].second.has_arg);
  EXPECT_DOUBLE_EQ(events[1].second.arg, 7.0);
  EXPECT_FALSE(events[2].second.has_arg);

  std::ostringstream os;
  recorder.WriteChromeJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  // ts is emitted in microseconds with ns resolution: 100 ns -> 0.100 us.
  EXPECT_NE(json.find("\"ts\": 0.100"), std::string::npos);
}

TEST(TraceRecorderTest, TruncatesLongNamesWithoutOverflow) {
  TraceRecorder recorder;
  recorder.Start(16);
  const std::string long_name(3 * TraceRecorder::kMaxNameLength, 'x');
  recorder.RecordInstant(long_name.c_str());
  recorder.Stop();
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].second.name),
            long_name.substr(0, TraceRecorder::kMaxNameLength));
}

TEST(TraceRecorderTest, StoppedRecorderIgnoresEvents) {
  TraceRecorder recorder;
  recorder.RecordInstant("before-start");
  recorder.Start(16);
  recorder.Stop();
  recorder.RecordInstant("after-stop");
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(TraceRecorderTest, EnforcesMinimumCapacity) {
  TraceRecorder recorder;
  recorder.Start(1);
  for (int i = 0; i < 10; ++i) recorder.RecordInstant("e");
  recorder.Stop();
  EXPECT_EQ(recorder.recorded(), TraceRecorder::kMinCapacity);
  EXPECT_EQ(recorder.dropped(), 10 - TraceRecorder::kMinCapacity);
}

TEST(TraceRecorderTest, WraparoundDropsOldestAndCountsThem) {
  GlobalObservabilityGuard guard;
#if TABSKETCH_METRICS_ENABLED
  util::PreregisterCoreMetrics(&MetricsRegistry::Global());
  MetricsRegistry::Global().ResetValues();
  MetricsRegistry::SetEnabled(true);
#endif  // TABSKETCH_METRICS_ENABLED
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start(16);
  for (uint64_t i = 0; i < 50; ++i) recorder.RecordComplete("event", i, 1);
  recorder.Stop();

  EXPECT_EQ(recorder.recorded(), 16u);
  EXPECT_EQ(recorder.dropped(), 34u);
  // Oldest-first retention: only the window [34, 50) of timestamps survives.
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(events.front().second.ts_ns, 34u);
  EXPECT_EQ(events.back().second.ts_ns, 49u);

  // The export is still valid JSON and the loss is stamped in the document.
  std::ostringstream os;
  recorder.WriteChromeJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"dropped\": 34"), std::string::npos);
#if TABSKETCH_METRICS_ENABLED
  // Stop() mirrored the loss into the metrics counter.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("trace.dropped")->value(),
            34u);
#endif  // TABSKETCH_METRICS_ENABLED
}

TEST(TraceRecorderTest, ThreadsGetDistinctRingsWithMonotonicTimestamps) {
  TraceRecorder recorder;
  recorder.Start(256);
  constexpr int kThreads = 4;
  constexpr int kEvents = 32;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.RecordComplete("worker", recorder.NowNs(), 1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  recorder.Stop();

  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(recorder.dropped(), 0u);

  std::map<uint32_t, std::vector<uint64_t>> stamps_by_tid;
  for (const auto& [tid, event] : recorder.Snapshot()) {
    stamps_by_tid[tid].push_back(event.ts_ns);
  }
  ASSERT_EQ(stamps_by_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, stamps] : stamps_by_tid) {
    EXPECT_EQ(stamps.size(), static_cast<size_t>(kEvents)) << "tid " << tid;
    EXPECT_TRUE(std::is_sorted(stamps.begin(), stamps.end())) << "tid " << tid;
  }

  std::ostringstream os;
  recorder.WriteChromeJson(os);
  EXPECT_TRUE(JsonChecker::Valid(os.str()));
}

TEST(TraceRecorderTest, RestartInvalidatesPreviousRecording) {
  TraceRecorder recorder;
  recorder.Start(16);
  recorder.RecordInstant("first");
  recorder.Start(16);  // new recording: old rings are discarded
  recorder.RecordInstant("second");
  recorder.Stop();
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].second.name, "second");
}

#if TABSKETCH_METRICS_ENABLED

TEST(TraceRecorderTest, SpanMacroFeedsGlobalRecorder) {
  GlobalObservabilityGuard guard;
  MetricsRegistry::SetEnabled(false);  // tracing alone must suffice
  TraceRecorder::Global().Start(64);
  {
    TABSKETCH_TRACE_SPAN("test.span");
  }
  TABSKETCH_TRACE_INSTANT("test.instant", 42);
  TraceRecorder::Global().Stop();

  bool saw_span = false;
  bool saw_instant = false;
  for (const auto& [tid, event] : TraceRecorder::Global().Snapshot()) {
    (void)tid;
    if (std::string(event.name) == "test.span" && event.phase == 'X') {
      saw_span = true;
    }
    if (std::string(event.name) == "test.instant" && event.phase == 'i' &&
        event.has_arg && event.arg == 42.0) {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(TraceRecorderTest, MacrosAreInertWhenNothingIsActive) {
  GlobalObservabilityGuard guard;
  MetricsRegistry::SetEnabled(false);
  // Start+Stop clears any rings left over from earlier tests in this binary
  // and leaves the recorder inactive.
  TraceRecorder::Global().Start(16);
  TraceRecorder::Global().Stop();
  {
    TABSKETCH_TRACE_SPAN("test.inert");
  }
  TABSKETCH_TRACE_INSTANT("test.inert", 1);
  EXPECT_EQ(TraceRecorder::Global().recorded(), 0u);
}

#endif  // TABSKETCH_METRICS_ENABLED

}  // namespace
}  // namespace tabsketch
