#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/distributions.h"
#include "rng/splitmix64.h"
#include "rng/xoshiro256.h"
#include "util/median.h"

namespace tabsketch::rng {
namespace {

TEST(SplitMix64Test, KnownSequenceFromSeedZero) {
  // Reference values of SplitMix64 from seed 0 (widely published).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.Next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.Next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64Test, DeterministicPerSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Mix64Test, DistinctInputsGiveDistinctOutputs) {
  // Not a proof, but catches gross mixing regressions.
  std::vector<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.push_back(Mix64(i));
  std::sort(outputs.begin(), outputs.end());
  EXPECT_EQ(std::unique(outputs.begin(), outputs.end()), outputs.end());
}

TEST(MixSeedsTest, OrderSensitive) {
  EXPECT_NE(MixSeeds(1, 2), MixSeeds(2, 1));
  EXPECT_EQ(MixSeeds(1, 2), MixSeeds(1, 2));
}

TEST(Xoshiro256Test, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 gen(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleOpenNeverZeroOrOne) {
  Xoshiro256 gen(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.NextDoubleOpen();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoundedStaysInRange) {
  Xoshiro256 gen(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(gen.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, NextBoundedRoughlyUniform) {
  Xoshiro256 gen(11);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[gen.NextBounded(kBound)];
  for (int count : counts) {
    // Expected 10000 per bucket; 4-sigma band ~ +-380.
    EXPECT_NEAR(count, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(Xoshiro256Test, MeanOfUniformsNearHalf) {
  Xoshiro256 gen(13);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += gen.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(GaussianSamplerTest, MomentsMatchStandardNormal) {
  Xoshiro256 gen(17);
  GaussianSampler sampler;
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = sampler.Sample(gen);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);
}

TEST(GaussianSamplerTest, SymmetricTails) {
  Xoshiro256 gen(19);
  GaussianSampler sampler;
  int positive = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (sampler.Sample(gen) > 0.0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / kDraws, 0.5, 0.01);
}

TEST(CauchySamplerTest, MedianOfAbsIsOne) {
  // For standard Cauchy, median(|X|) = tan(pi/4) = 1.
  Xoshiro256 gen(23);
  CauchySampler sampler;
  constexpr int kDraws = 200000;
  std::vector<double> draws(kDraws);
  for (double& d : draws) d = std::fabs(sampler.Sample(gen));
  EXPECT_NEAR(util::MedianInPlace(draws), 1.0, 0.02);
}

TEST(CauchySamplerTest, QuartilesMatchTheory) {
  // CDF(x) = 1/2 + atan(x)/pi; the 0.75 quantile is tan(pi/4) = 1 and the
  // 0.25 quantile is -1.
  Xoshiro256 gen(29);
  CauchySampler sampler;
  constexpr int kDraws = 200000;
  std::vector<double> draws(kDraws);
  for (double& d : draws) d = sampler.Sample(gen);
  std::sort(draws.begin(), draws.end());
  EXPECT_NEAR(draws[kDraws / 4], -1.0, 0.03);
  EXPECT_NEAR(draws[3 * kDraws / 4], 1.0, 0.03);
}

TEST(ExponentialSamplerTest, MeanIsOne) {
  Xoshiro256 gen(31);
  ExponentialSampler sampler;
  constexpr int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = sampler.Sample(gen);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 1.0, 0.01);
}

}  // namespace
}  // namespace tabsketch::rng
