// Theorem-level and regression guarantees:
//   - the (eps, delta) accuracy guarantee of paper Theorems 1-2, verified
//     empirically over many independent sketch draws;
//   - golden values pinning the deterministic random-number pipeline, so
//     accidental changes to seeding/derivation (which would silently break
//     compatibility of persisted sketches) fail loudly;
//   - robustness of the binary readers against corrupted input.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_io.h"
#include "core/sketch_pool.h"
#include "core/sketcher.h"
#include "core/stable_matrix.h"
#include "rng/splitmix64.h"
#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/table_io.h"

namespace tabsketch {
namespace {

/// Empirical (eps, delta) envelope of paper Theorems 1-2, swept over a
/// (p, k) grid: with k = c/eps^2 * log(1/delta) sketch components, the
/// median estimate is within (1 +- eps) of the exact Lp distance with
/// probability >= 1 - delta over the sketch's randomness. Inverting for
/// fixed k gives eps = C(p)/sqrt(k); the constant is larger for
/// heavy-tailed p (the |SaS(p)| density at its median shrinks as p -> 0,
/// inflating the median-estimator noise). Each grid cell draws many
/// independent sketch families (different seeds) for one fixed pair of
/// objects and counts how often the estimate lands in the band — so one
/// test run checks both the delta coverage at each k and the 1/sqrt(k)
/// scaling of the achievable eps across k.
class EpsilonDeltaGridTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(EpsilonDeltaGridTest, CoverageMeetsDelta) {
  const double p = std::get<0>(GetParam());
  const size_t k = std::get<1>(GetParam());
  // Empirical noise constants: eps = C(p)/sqrt(k) holds the coverage level
  // across the whole k sweep. C ~ 4 for p >= 1, ~ 6 for p = 0.5.
  const double c = (p < 0.75) ? 6.0 : 4.0;
  const double eps = c / std::sqrt(static_cast<double>(k));
  constexpr int kTrials = 120;
  constexpr double kDelta = 0.15;  // 1 - delta = 85% demanded coverage

  rng::Xoshiro256 gen(2026);
  table::Matrix x(12, 12), y(12, 12);
  for (double& v : x.Values()) v = gen.NextDouble() * 100.0;
  for (double& v : y.Values()) v = gen.NextDouble() * 100.0;
  const double exact = core::LpDistance(x.View(), y.View(), p);

  int inside = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    core::SketchParams params{.p = p, .k = k,
                              .seed = 9000 + static_cast<uint64_t>(trial)};
    auto sketcher = core::Sketcher::Create(params);
    auto estimator = core::DistanceEstimator::Create(params);
    ASSERT_TRUE(sketcher.ok() && estimator.ok());
    const double approx = estimator->Estimate(
        sketcher->SketchOf(x.View()), sketcher->SketchOf(y.View()));
    if (std::fabs(approx / exact - 1.0) <= eps) ++inside;
  }
  // Binomial noise on 120 trials is ~ +-6.5 percentage points at this level;
  // the demanded coverage already absorbs it.
  EXPECT_GE(static_cast<double>(inside) / kTrials, 1.0 - kDelta)
      << "p=" << p << " k=" << k << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(PkGrid, EpsilonDeltaGridTest,
                         ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                                            ::testing::Values(size_t{100},
                                                              size_t{400})),
                         [](const auto& info) {
                           const double p = std::get<0>(info.param);
                           const size_t k = std::get<1>(info.param);
                           std::string name = "p";
                           name += (p == 0.5) ? "05" : (p == 1.0 ? "1" : "2");
                           name += 'k';
                           name += std::to_string(k);
                           return name;
                         });

/// Theorem 5's dyadic guarantee, swept over rectangle shapes and anchors:
/// a compound (four-corner) sketch of an arbitrary rectangle behaves like a
/// canonical sketch of the folded rectangle, so the estimated distance
/// between two equal-shape compound sketches lands in a 4(1 +- eps)-style
/// band around the exact Lp distance. Overlap cells are counted 1, 2 or 4
/// times, which bounds the inflation at 4 (up to 4^(1/p) for p < 1, where
/// sign cancellation in the fold can also deflate the ratio below 1). The
/// sweep exercises canonical sizes from 8x8 up to 16x16 with multiple
/// disjoint anchor pairs per shape.
class DyadicFactorSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DyadicFactorSweepTest, RatioWithinTheoremFiveBandAcrossShapes) {
  const double p = GetParam();
  rng::Xoshiro256 gen(77);
  table::Matrix data(64, 64);
  for (double& v : data.Values()) v = gen.NextDouble() * 50.0;

  core::SketchParams params{.p = p, .k = 256, .seed = 11};
  core::PoolOptions options;
  options.log2_min_rows = 2;
  options.log2_min_cols = 2;
  auto pool = core::SketchPool::Build(data, params, options);
  auto estimator = core::DistanceEstimator::Create(params);
  ASSERT_TRUE(pool.ok() && estimator.ok());

  struct Rect { size_t rows, cols; };
  struct AnchorPair { size_t ar, ac, br, bc; };
  const Rect kShapes[] = {{11, 13}, {9, 20}, {16, 16}, {24, 10}};
  const AnchorPair kAnchors[] = {{1, 2, 38, 35}, {20, 3, 5, 44},
                                 {33, 28, 0, 0}};
  // Bands include estimator noise at k = 256 and, versus the single-
  // rectangle check in pool_test.cc, the wider empirical tail of a 12-cell
  // sweep: partial cancellation in the folded difference can pull p >= 1
  // ratios modestly below 1 for unlucky shape/anchor combinations.
  const double lower = (p < 1.0) ? 0.15 : 0.5;
  const double upper = (p < 1.0) ? 6.0 : 5.0;

  for (const Rect& shape : kShapes) {
    for (const AnchorPair& anchors : kAnchors) {
      ASSERT_LE(anchors.ar + shape.rows, data.rows());
      ASSERT_LE(anchors.br + shape.rows, data.rows());
      ASSERT_LE(anchors.ac + shape.cols, data.cols());
      ASSERT_LE(anchors.bc + shape.cols, data.cols());
      auto sa = pool->Query(anchors.ar, anchors.ac, shape.rows, shape.cols);
      auto sb = pool->Query(anchors.br, anchors.bc, shape.rows, shape.cols);
      ASSERT_TRUE(sa.ok() && sb.ok());
      const double approx = estimator->Estimate(*sa, *sb);
      const double exact = core::LpDistance(
          data.Window(anchors.ar, anchors.ac, shape.rows, shape.cols),
          data.Window(anchors.br, anchors.bc, shape.rows, shape.cols), p);
      ASSERT_GT(exact, 0.0);
      const double ratio = approx / exact;
      EXPECT_GT(ratio, lower) << "p=" << p << " shape=" << shape.rows << "x"
                              << shape.cols << " anchors=(" << anchors.ar
                              << "," << anchors.ac << ")/(" << anchors.br
                              << "," << anchors.bc << ")";
      EXPECT_LT(ratio, upper) << "p=" << p << " shape=" << shape.rows << "x"
                              << shape.cols << " anchors=(" << anchors.ar
                              << "," << anchors.ac << ")/(" << anchors.br
                              << "," << anchors.bc << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ps, DyadicFactorSweepTest,
                         ::testing::Values(0.5, 1.0, 2.0));

TEST(GoldenValuesTest, SeedDerivationPipelineIsStable) {
  // These pin the persisted-sketch compatibility contract: if any of them
  // changes, previously saved sketch sets and pools are silently
  // incompatible with newly computed sketches. Bump the sketch-file format
  // version if a change is ever intentional.
  EXPECT_EQ(rng::Mix64(42), 13679457532755275413ULL);
  EXPECT_EQ(rng::MixSeeds(1, 2), 15039531164227991741ULL);
  EXPECT_DOUBLE_EQ(rng::SampleStableAt(1.0, 7), -5.6916814179475681);
  EXPECT_DOUBLE_EQ(rng::SampleStableAt(2.0, 7), 1.1308649617728408);
  EXPECT_DOUBLE_EQ(rng::SampleStableAt(0.5, 7), -9.3463490772798288);

  core::SketchParams params{.p = 1.0, .k = 4, .seed = 123};
  EXPECT_DOUBLE_EQ(core::StableEntry(params, 1, 3, 3, 1, 2),
                   6.8965956471859728);

  auto sketcher = core::Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  table::Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  const core::Sketch sketch = sketcher->SketchOf(m.View());
  ASSERT_EQ(sketch.size(), 4u);
  EXPECT_DOUBLE_EQ(sketch.values[0], 16.029565440631128);
  EXPECT_DOUBLE_EQ(sketch.values[1], 2.8723239132582776);
  EXPECT_DOUBLE_EQ(sketch.values[2], -20.026351346144452);
  EXPECT_DOUBLE_EQ(sketch.values[3], -23.292189934607549);
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CorruptionRobustnessTest, TableReaderNeverCrashes) {
  const std::string path = TempPath("fuzz_table.tbl");
  table::Matrix m(6, 7);
  rng::Xoshiro256 gen(3);
  for (double& v : m.Values()) v = gen.NextDouble();
  ASSERT_TRUE(table::WriteBinary(m, path).ok());
  const std::vector<char> pristine = ReadAll(path);

  rng::Xoshiro256 fuzz(99);
  for (int round = 0; round < 60; ++round) {
    std::vector<char> corrupted = pristine;
    // Flip 1-4 random bytes.
    const size_t flips = 1 + fuzz.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      corrupted[fuzz.NextBounded(corrupted.size())] ^=
          static_cast<char>(1 + fuzz.NextBounded(255));
    }
    WriteAll(path, corrupted);
    auto loaded = table::ReadBinary(path);
    // Must not crash; on success the shape must be internally consistent.
    if (loaded.ok()) {
      EXPECT_EQ(loaded->size(), loaded->rows() * loaded->cols());
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionRobustnessTest, SketchSetReaderNeverCrashes) {
  const std::string path = TempPath("fuzz_sketches.bin");
  core::SketchSet set;
  set.params = {.p = 0.5, .k = 8, .seed = 4};
  set.object_rows = 4;
  set.object_cols = 4;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 6; ++i) {
    core::Sketch sketch;
    sketch.values.resize(8);
    for (double& v : sketch.values) v = gen.NextDouble();
    set.sketches.push_back(std::move(sketch));
  }
  ASSERT_TRUE(core::WriteSketchSet(set, path).ok());
  const std::vector<char> pristine = ReadAll(path);

  rng::Xoshiro256 fuzz(101);
  for (int round = 0; round < 60; ++round) {
    std::vector<char> corrupted = pristine;
    const size_t flips = 1 + fuzz.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      corrupted[fuzz.NextBounded(corrupted.size())] ^=
          static_cast<char>(1 + fuzz.NextBounded(255));
    }
    WriteAll(path, corrupted);
    auto loaded = core::ReadSketchSet(path);
    if (loaded.ok()) {
      for (const core::Sketch& sketch : loaded->sketches) {
        EXPECT_EQ(sketch.size(), loaded->params.k);
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabsketch
