// Theorem-level and regression guarantees:
//   - the (eps, delta) accuracy guarantee of paper Theorems 1-2, verified
//     empirically over many independent sketch draws;
//   - golden values pinning the deterministic random-number pipeline, so
//     accidental changes to seeding/derivation (which would silently break
//     compatibility of persisted sketches) fail loudly;
//   - robustness of the binary readers against corrupted input.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_io.h"
#include "core/sketcher.h"
#include "core/stable_matrix.h"
#include "rng/splitmix64.h"
#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/table_io.h"

namespace tabsketch {
namespace {

/// Empirical (eps, delta) coverage: with k = c/eps^2 * log(1/delta), the
/// estimate is within (1 +- eps) of the exact distance with probability
/// >= 1 - delta over the sketch's randomness. We draw many independent
/// sketch families (different seeds) for one fixed pair of objects and
/// count how often the estimate lands in the band.
class EpsilonDeltaTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonDeltaTest, CoverageAtKFourHundred) {
  const double p = GetParam();
  // The median-estimator noise at fixed k scales as 1/(f(m) sqrt(k)) where
  // f is the |SaS(p)| density at its median; f(m) shrinks as p -> 0, so the
  // eps achievable at k = 400 is wider for heavy-tailed p.
  const double kEps = (p < 0.75) ? 0.30 : 0.20;
  constexpr int kTrials = 150;

  rng::Xoshiro256 gen(2026);
  table::Matrix x(12, 12), y(12, 12);
  for (double& v : x.Values()) v = gen.NextDouble() * 100.0;
  for (double& v : y.Values()) v = gen.NextDouble() * 100.0;
  const double exact = core::LpDistance(x.View(), y.View(), p);

  int inside = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    core::SketchParams params{.p = p, .k = 400,
                              .seed = 9000 + static_cast<uint64_t>(trial)};
    auto sketcher = core::Sketcher::Create(params);
    auto estimator = core::DistanceEstimator::Create(params);
    ASSERT_TRUE(sketcher.ok() && estimator.ok());
    const double approx = estimator->Estimate(
        sketcher->SketchOf(x.View()), sketcher->SketchOf(y.View()));
    if (std::fabs(approx / exact - 1.0) <= kEps) ++inside;
  }
  // At k = 400 the estimator noise is well under eps = 0.2 except for the
  // heaviest-tailed p; demand >= 85% coverage (binomial noise on 150 trials
  // is ~ +-6 percentage points at this level).
  EXPECT_GE(static_cast<double>(inside) / kTrials, 0.85) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, EpsilonDeltaTest,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(GoldenValuesTest, SeedDerivationPipelineIsStable) {
  // These pin the persisted-sketch compatibility contract: if any of them
  // changes, previously saved sketch sets and pools are silently
  // incompatible with newly computed sketches. Bump the sketch-file format
  // version if a change is ever intentional.
  EXPECT_EQ(rng::Mix64(42), 13679457532755275413ULL);
  EXPECT_EQ(rng::MixSeeds(1, 2), 15039531164227991741ULL);
  EXPECT_DOUBLE_EQ(rng::SampleStableAt(1.0, 7), -5.6916814179475681);
  EXPECT_DOUBLE_EQ(rng::SampleStableAt(2.0, 7), 1.1308649617728408);
  EXPECT_DOUBLE_EQ(rng::SampleStableAt(0.5, 7), -9.3463490772798288);

  core::SketchParams params{.p = 1.0, .k = 4, .seed = 123};
  EXPECT_DOUBLE_EQ(core::StableEntry(params, 1, 3, 3, 1, 2),
                   6.8965956471859728);

  auto sketcher = core::Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  table::Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  const core::Sketch sketch = sketcher->SketchOf(m.View());
  ASSERT_EQ(sketch.size(), 4u);
  EXPECT_DOUBLE_EQ(sketch.values[0], 16.029565440631128);
  EXPECT_DOUBLE_EQ(sketch.values[1], 2.8723239132582776);
  EXPECT_DOUBLE_EQ(sketch.values[2], -20.026351346144452);
  EXPECT_DOUBLE_EQ(sketch.values[3], -23.292189934607549);
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CorruptionRobustnessTest, TableReaderNeverCrashes) {
  const std::string path = TempPath("fuzz_table.tbl");
  table::Matrix m(6, 7);
  rng::Xoshiro256 gen(3);
  for (double& v : m.Values()) v = gen.NextDouble();
  ASSERT_TRUE(table::WriteBinary(m, path).ok());
  const std::vector<char> pristine = ReadAll(path);

  rng::Xoshiro256 fuzz(99);
  for (int round = 0; round < 60; ++round) {
    std::vector<char> corrupted = pristine;
    // Flip 1-4 random bytes.
    const size_t flips = 1 + fuzz.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      corrupted[fuzz.NextBounded(corrupted.size())] ^=
          static_cast<char>(1 + fuzz.NextBounded(255));
    }
    WriteAll(path, corrupted);
    auto loaded = table::ReadBinary(path);
    // Must not crash; on success the shape must be internally consistent.
    if (loaded.ok()) {
      EXPECT_EQ(loaded->size(), loaded->rows() * loaded->cols());
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionRobustnessTest, SketchSetReaderNeverCrashes) {
  const std::string path = TempPath("fuzz_sketches.bin");
  core::SketchSet set;
  set.params = {.p = 0.5, .k = 8, .seed = 4};
  set.object_rows = 4;
  set.object_cols = 4;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 6; ++i) {
    core::Sketch sketch;
    sketch.values.resize(8);
    for (double& v : sketch.values) v = gen.NextDouble();
    set.sketches.push_back(std::move(sketch));
  }
  ASSERT_TRUE(core::WriteSketchSet(set, path).ok());
  const std::vector<char> pristine = ReadAll(path);

  rng::Xoshiro256 fuzz(101);
  for (int round = 0; round < 60; ++round) {
    std::vector<char> corrupted = pristine;
    const size_t flips = 1 + fuzz.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      corrupted[fuzz.NextBounded(corrupted.size())] ^=
          static_cast<char>(1 + fuzz.NextBounded(255));
    }
    WriteAll(path, corrupted);
    auto loaded = core::ReadSketchSet(path);
    if (loaded.ok()) {
      for (const core::Sketch& sketch : loaded->sketches) {
        EXPECT_EQ(sketch.size(), loaded->params.k);
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabsketch
