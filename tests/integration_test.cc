#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "cluster/exact_backend.h"
#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/ondemand.h"
#include "core/sketch_io.h"
#include "core/sketch_pool.h"
#include "data/call_volume.h"
#include "data/six_region.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "eval/quality.h"
#include "table/tiling.h"

namespace tabsketch {
namespace {

/// The paper's headline mining result in miniature (Figure 4(b)): on the
/// six-region data with 1% outliers, sketched k-means recovers the known
/// clustering essentially perfectly at fractional p, while p = 2 does much
/// worse because outliers dominate squared differences.
TEST(IntegrationTest, FractionalPRecoversPlantedClusters) {
  data::SixRegionOptions options;
  options.rows = 128;
  options.cols = 256;
  options.outlier_fraction = 0.01;
  auto dataset = data::GenerateSixRegion(options);
  ASSERT_TRUE(dataset.ok());
  auto grid = table::TileGrid::Create(&dataset->table, 8, 8);
  ASSERT_TRUE(grid.ok());
  const std::vector<int> truth = data::GroundTruthForTiles(*dataset, *grid);

  auto accuracy_for_p = [&](double p) {
    auto backend = cluster::SketchBackend::Create(
        &*grid, {.p = p, .k = 64, .seed = 99},
        cluster::SketchMode::kPrecomputed);
    EXPECT_TRUE(backend.ok());
    // ++ seeding: the bands have very unequal sizes (down to 1/16 of the
    // data), so uniform-random seeds routinely miss the small bands and
    // Lloyd's cannot split its way back. D^2 seeding lands one seed per
    // band with near-certainty.
    auto result = cluster::RunKMeans(
        &*backend,
        {.k = data::kNumRegions, .max_iterations = 60, .seed = 12345,
         .seeding = cluster::SeedingMethod::kPlusPlus});
    EXPECT_TRUE(result.ok());
    return eval::BestMatchAgreement(truth, result->assignment,
                                    data::kNumRegions);
  };

  const double low_p = accuracy_for_p(0.5);
  const double high_p = accuracy_for_p(2.0);
  EXPECT_GE(low_p, 0.95);
  EXPECT_GT(low_p, high_p);
}

/// Distance-estimation pipeline on realistic call-volume data (Figure 2 in
/// miniature): sketch estimates track exact distances across tile pairs.
TEST(IntegrationTest, SketchDistancesTrackExactOnCallVolume) {
  data::CallVolumeOptions options;
  options.num_stations = 128;
  options.bins_per_day = 96;
  auto volume = data::GenerateCallVolume(options);
  ASSERT_TRUE(volume.ok());
  auto grid = table::TileGrid::Create(&*volume, 16, 16);
  ASSERT_TRUE(grid.ok());

  core::SketchParams params{.p = 1.0, .k = 512, .seed = 7};
  auto sketcher = core::Sketcher::Create(params);
  auto estimator = core::DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<core::Sketch> sketches =
      core::SketchAllTiles(*sketcher, *grid);

  std::vector<double> exact;
  std::vector<double> approx;
  for (size_t a = 0; a < grid->num_tiles(); ++a) {
    const size_t b = (a * 7 + 3) % grid->num_tiles();
    if (a == b) continue;
    exact.push_back(core::LpDistance(grid->Tile(a), grid->Tile(b), 1.0));
    approx.push_back(estimator->Estimate(sketches[a], sketches[b]));
  }
  // All estimates share the same k random matrices, so their errors are
  // correlated and do not average out across pairs; the band reflects the
  // per-seed noise at k = 512, not 1/sqrt(num_pairs) averaging.
  EXPECT_NEAR(eval::CumulativeCorrectness(exact, approx), 1.0, 0.08);
  EXPECT_GE(eval::AverageCorrectness(exact, approx), 0.85);
}

/// Sketch persistence round-trips through disk and keeps clustering results
/// identical: a precomputed pool written by one run is usable by the next.
TEST(IntegrationTest, PersistedSketchesReproduceDistances) {
  data::CallVolumeOptions options;
  options.num_stations = 64;
  options.bins_per_day = 48;
  auto volume = data::GenerateCallVolume(options);
  ASSERT_TRUE(volume.ok());
  auto grid = table::TileGrid::Create(&*volume, 8, 8);
  ASSERT_TRUE(grid.ok());

  core::SketchParams params{.p = 0.5, .k = 32, .seed = 13};
  auto sketcher = core::Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  core::SketchSet set;
  set.params = params;
  set.object_rows = 8;
  set.object_cols = 8;
  set.sketches = core::SketchAllTiles(*sketcher, *grid);

  const std::string path = ::testing::TempDir() + "/integration_sketches.bin";
  ASSERT_TRUE(core::WriteSketchSet(set, path).ok());
  auto reloaded = core::ReadSketchSet(path);
  ASSERT_TRUE(reloaded.ok());

  auto estimator = core::DistanceEstimator::Create(params);
  ASSERT_TRUE(estimator.ok());
  for (size_t t = 1; t < grid->num_tiles(); t += 5) {
    EXPECT_DOUBLE_EQ(
        estimator->Estimate(set.sketches[0], set.sketches[t]),
        estimator->Estimate(reloaded->sketches[0], reloaded->sketches[t]));
  }
}

/// Pool-based arbitrary-rectangle queries stay consistent with clustering
/// distances: ordering of near/far region pairs is preserved end-to-end.
TEST(IntegrationTest, PoolQueriesOrderRegionsOnSixRegionData) {
  data::SixRegionOptions options;
  options.rows = 64;
  options.cols = 128;
  options.outlier_fraction = 0.0;
  auto dataset = data::GenerateSixRegion(options);
  ASSERT_TRUE(dataset.ok());

  core::SketchParams params{.p = 1.0, .k = 128, .seed = 21};
  core::PoolOptions pool_options;
  pool_options.log2_min_rows = 3;
  pool_options.log2_min_cols = 3;
  auto pool = core::SketchPool::Build(dataset->table, params, pool_options);
  auto estimator = core::DistanceEstimator::Create(params);
  ASSERT_TRUE(pool.ok() && estimator.ok());

  // Rows 0-15 = region 0; rows 16-31 = region 1; rows 32-47 = region 2
  // (for 64 rows). Same-region rectangles should be closer than
  // cross-region ones.
  auto q = [&](size_t row, size_t col) {
    auto sketch = pool->Query(row, col, 12, 20);
    EXPECT_TRUE(sketch.ok());
    return *sketch;
  };
  const core::Sketch region0_a = q(0, 0);
  const core::Sketch region0_b = q(2, 60);
  const core::Sketch region2 = q(34, 30);
  const double same = estimator->Estimate(region0_a, region0_b);
  const double cross = estimator->Estimate(region0_a, region2);
  EXPECT_LT(same, cross);
}

/// Clustering quality measured the paper's way: sketched clustering spread
/// is within a few percent of exact clustering spread on banded data.
TEST(IntegrationTest, SketchedClusteringQualityNearExact) {
  data::SixRegionOptions options;
  options.rows = 128;
  options.cols = 128;
  options.outlier_fraction = 0.0;
  auto dataset = data::GenerateSixRegion(options);
  ASSERT_TRUE(dataset.ok());
  auto grid = table::TileGrid::Create(&dataset->table, 8, 8);
  ASSERT_TRUE(grid.ok());

  cluster::KMeansOptions kmeans{.k = data::kNumRegions, .max_iterations = 60,
                                .seed = 321};
  auto exact_backend = cluster::ExactBackend::Create(&*grid, 1.0);
  auto sketch_backend = cluster::SketchBackend::Create(
      &*grid, {.p = 1.0, .k = 96, .seed = 4}, cluster::SketchMode::kOnDemand);
  ASSERT_TRUE(exact_backend.ok() && sketch_backend.ok());
  auto exact_result = cluster::RunKMeans(&*exact_backend, kmeans);
  auto sketch_result = cluster::RunKMeans(&*sketch_backend, kmeans);
  ASSERT_TRUE(exact_result.ok() && sketch_result.ok());

  const double spread_exact = eval::ClusteringSpread(
      *grid, exact_result->assignment, kmeans.k, 1.0);
  const double spread_sketch = eval::ClusteringSpread(
      *grid, sketch_result->assignment, kmeans.k, 1.0);
  const double quality =
      eval::QualityOfSketchedClusteringPercent(spread_exact, spread_sketch);
  EXPECT_GT(quality, 90.0);
}

}  // namespace
}  // namespace tabsketch
