#include "util/metrics_snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "util/metrics.h"

namespace tabsketch::util {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MetricsSnapshotTest, CapturesEveryFamilyAndDefaultsMissingNames) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(7);
  registry.GetGauge("a.gauge")->Set(2.5);
  registry.GetHistogram("a.hist")->Observe(1e-3);

  const MetricsSnapshot snapshot = CaptureSnapshot(registry);
  EXPECT_GT(snapshot.wall_seconds, 0.0);
  EXPECT_EQ(snapshot.counter("a.count"), 7u);
  EXPECT_EQ(snapshot.gauge("a.gauge"), 2.5);
  ASSERT_NE(snapshot.histogram("a.hist"), nullptr);
  EXPECT_EQ(snapshot.histogram("a.hist")->count, 1u);
  EXPECT_TRUE(snapshot.histogram("a.hist")->has_extremes);

  // Missing names read as empty metrics, not errors.
  EXPECT_EQ(snapshot.counter("no.such"), 0u);
  EXPECT_EQ(snapshot.gauge("no.such"), 0.0);
  EXPECT_EQ(snapshot.histogram("no.such"), nullptr);
}

TEST(MetricsSnapshotTest, DiffYieldsWindowedCountersAndRates) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("serve.requests.distance");
  requests->Increment(10);
  MetricsSnapshot prev = CaptureSnapshot(registry);
  prev.wall_seconds = 100.0;  // pin the window for exact rate arithmetic
  requests->Increment(30);
  MetricsSnapshot cur = CaptureSnapshot(registry);
  cur.wall_seconds = 102.0;

  const MetricsDelta delta = Diff(prev, cur);
  EXPECT_EQ(delta.seconds, 2.0);
  EXPECT_EQ(delta.counter("serve.requests.distance"), 30u);
  EXPECT_EQ(delta.Rate("serve.requests.distance"), 15.0);
  EXPECT_EQ(delta.Rate("no.such"), 0.0);
}

TEST(MetricsSnapshotTest, DiffClampsApparentCounterDecreaseToZero) {
  // Relaxed-atomic capture skew can make a monotonic counter look like it
  // went backwards between two snapshots; the delta must clamp, not wrap.
  MetricsSnapshot prev;
  prev.wall_seconds = 0.0;
  prev.counters["skewed"] = 10;
  MetricsSnapshot cur;
  cur.wall_seconds = 1.0;
  cur.counters["skewed"] = 4;
  EXPECT_EQ(Diff(prev, cur).counter("skewed"), 0u);
}

TEST(MetricsSnapshotTest, IntervalHistogramPercentilesSeeOnlyTheWindow) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("serve.request.latency.seconds");
  for (int i = 0; i < 100; ++i) latency->Observe(1e-3);
  const MetricsSnapshot prev = CaptureSnapshot(registry);
  for (int i = 0; i < 100; ++i) latency->Observe(16e-3);
  const MetricsSnapshot cur = CaptureSnapshot(registry);

  // Cumulative p50 (200 observations) still sits in the 1 ms bucket...
  const HistogramSnapshot* total = cur.histogram("serve.request.latency.seconds");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->BucketTotal(), 200u);
  EXPECT_LT(total->Percentile(0.5), 2e-3);

  // ...but the interval histogram contains only the slow window.
  const MetricsDelta delta = Diff(prev, cur);
  const HistogramSnapshot* interval =
      delta.histogram("serve.request.latency.seconds");
  ASSERT_NE(interval, nullptr);
  EXPECT_EQ(interval->BucketTotal(), 100u);
  EXPECT_FALSE(interval->has_extremes);
  EXPECT_GT(interval->Percentile(0.5), 8e-3);
  EXPECT_LT(interval->Percentile(0.5), 32e-3);
  EXPECT_NEAR(interval->sum, 100 * 16e-3, 1e-9);
}

TEST(MetricsSnapshotTest, BucketEdgesMatchHistogramLeSemantics) {
  // An observation exactly at an edge must land in the bucket labeled with
  // that edge (Prometheus `le` is inclusive).
  Histogram histogram;
  histogram.Observe(Histogram::BucketUpperEdge(10));
  EXPECT_EQ(histogram.bucket_count(10), 1u);
  EXPECT_EQ(PrometheusBucketEdge(0), "1e-09");
  EXPECT_EQ(Histogram::BucketUpperEdge(1), 2e-9);
  EXPECT_GT(Histogram::BucketUpperEdge(Histogram::kBuckets - 1),
            Histogram::BucketUpperEdge(Histogram::kBuckets - 2));
}

TEST(MetricsSnapshotTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.GetCounter("serve.requests.distance")->Increment(3);
  registry.GetGauge("serve.connections.active")->Set(2.0);
  Histogram* latency = registry.GetHistogram("serve.request.latency.seconds");
  latency->Observe(0.5e-3);
  latency->Observe(1e-3);
  latency->Observe(4e-3);

  std::ostringstream os;
  WritePrometheusText(CaptureSnapshot(registry), os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE tabsketch_serve_requests_distance counter\n"
                      "tabsketch_serve_requests_distance 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tabsketch_serve_connections_active gauge\n"
                      "tabsketch_serve_connections_active 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("# TYPE tabsketch_serve_request_latency_seconds histogram\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("tabsketch_serve_request_latency_seconds_bucket"
                      "{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tabsketch_serve_request_latency_seconds_count 3\n"),
            std::string::npos)
      << text;
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.compare(text.size() - 6, 6, "# EOF\n"), 0);

  // Cumulative `_bucket` samples must be non-decreasing in `le` order (they
  // are emitted in bucket order, so line order is `le` order).
  uint64_t last = 0;
  size_t pos = 0;
  size_t bucket_lines = 0;
  while ((pos = text.find("_bucket{le=\"", pos)) != std::string::npos) {
    const size_t space = text.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    const uint64_t value = std::stoull(text.substr(space + 2));
    EXPECT_GE(value, last);
    last = value;
    ++bucket_lines;
    pos = space;
  }
  EXPECT_GE(bucket_lines, 2u);
}

TEST(MetricsSnapshotTest, ConcurrentMutatorsNeverCorruptSnapshots) {
  // The registry-iteration hammer: 8 threads mutate counters, gauges and a
  // shared histogram while one thread captures, diffs and renders snapshots
  // in a loop. Under tsan this is the no-data-races proof; everywhere it
  // checks that windows never exceed totals and totals come out exact.
  MetricsRegistry registry;
  constexpr int kMutators = 8;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&registry, &stop] {
    MetricsSnapshot prev = CaptureSnapshot(registry);
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot cur = CaptureSnapshot(registry);
      const MetricsDelta delta = Diff(prev, cur);
      EXPECT_LE(delta.counter("hammer.count"), cur.counter("hammer.count"));
      const HistogramSnapshot* hist = cur.histogram("hammer.latency");
      if (hist != nullptr) {
        EXPECT_LE(hist->BucketTotal(), kMutators * kPerThread);
        (void)hist->Percentile(0.99);
      }
      std::ostringstream os;
      WritePrometheusText(cur, os);
      EXPECT_NE(os.str().find("# EOF\n"), std::string::npos);
      prev = cur;
    }
  });

  std::vector<std::thread> mutators;
  for (int t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&registry, t] {
      Counter* counter = registry.GetCounter("hammer.count");
      Gauge* gauge =
          registry.GetGauge("hammer.gauge." + std::to_string(t % 2));
      Histogram* histogram = registry.GetHistogram("hammer.latency");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Observe(1e-6 * static_cast<double>(i % 64 + 1));
      }
    });
  }
  for (std::thread& thread : mutators) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const MetricsSnapshot final_snapshot = CaptureSnapshot(registry);
  EXPECT_EQ(final_snapshot.counter("hammer.count"), kMutators * kPerThread);
  EXPECT_EQ(final_snapshot.gauge("hammer.gauge.0") +
                final_snapshot.gauge("hammer.gauge.1"),
            static_cast<double>(kMutators * kPerThread));
  const HistogramSnapshot* hist = final_snapshot.histogram("hammer.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kMutators * kPerThread);
  EXPECT_EQ(hist->BucketTotal(), kMutators * kPerThread);
}

TEST(MetricsTickerTest, BaselineTickRingAndAtomicFileRewrites) {
  MetricsRegistry registry;
  const std::string path = TempPath("metrics_snapshot_ticker.json");
  std::remove(path.c_str());

  MetricsTicker::Options options;
  options.interval_seconds = 0.02;
  options.ring_capacity = 4;
  options.metrics_json_path = path;
  options.registry = &registry;
  MetricsTicker ticker(options);

  // The constructor takes a synchronous baseline tick, so a window baseline
  // exists before the first interval elapses.
  EXPECT_GE(ticker.ticks(), 1u);
  ASSERT_TRUE(ticker.Latest().has_value());

  registry.GetCounter("tick.requests")->Increment(5);
  while (ticker.ticks() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::optional<MetricsSnapshot> latest = ticker.Latest();
  ASSERT_TRUE(latest.has_value());
  const std::optional<MetricsSnapshot> baseline =
      ticker.WindowBaseline(latest->wall_seconds + 1.0);
  ASSERT_TRUE(baseline.has_value());
  EXPECT_LE(baseline->wall_seconds, latest->wall_seconds);

  ticker.Stop();
  const uint64_t ticks_after_stop = ticker.ticks();
  ticker.Stop();  // idempotent: no further ticks
  EXPECT_EQ(ticker.ticks(), ticks_after_stop);
  // Each tick also bumps the serve.ticker.ticks counter in its registry.
  EXPECT_EQ(registry.GetCounter("serve.ticker.ticks")->value(),
            ticks_after_stop);

  // The file was rewritten atomically (temp + rename): what is on disk is a
  // complete, valid metrics document including the post-baseline counter.
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream contents;
  contents << file.rdbuf();
  EXPECT_TRUE(tabsketch::testing::JsonChecker::Valid(contents.str()))
      << contents.str();
  EXPECT_NE(contents.str().find("tick.requests"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(MetricsTickerTest, RingIsBoundedByCapacity) {
  MetricsRegistry registry;
  MetricsTicker::Options options;
  options.interval_seconds = 0.005;
  options.ring_capacity = 2;
  options.registry = &registry;
  MetricsTicker ticker(options);
  while (ticker.ticks() < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ticker.Stop();
  // Only the newest two snapshots survive; WindowBaseline falls back to the
  // oldest retained entry even for an arbitrarily old requested window.
  const std::optional<MetricsSnapshot> latest = ticker.Latest();
  const std::optional<MetricsSnapshot> oldest =
      ticker.WindowBaseline(latest->wall_seconds + 1e9);
  ASSERT_TRUE(latest.has_value());
  ASSERT_TRUE(oldest.has_value());
  EXPECT_GE(latest->wall_seconds, oldest->wall_seconds);
}

}  // namespace
}  // namespace tabsketch::util
