#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "core/estimator.h"
#include "core/knn.h"
#include "core/lp_distance.h"
#include "core/ondemand.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::core {
namespace {

/// Grid whose tiles fall into well-separated level groups: tile t has all
/// values near 100 * group(t), so nearest neighbors are same-group tiles.
/// The matrix lives on the heap so the grid's parent pointer stays valid
/// when the fixture is returned by value.
struct GroupedTiles {
  std::unique_ptr<table::Matrix> data;
  table::TileGrid grid;
  std::vector<int> group;
};

GroupedTiles MakeGrouped(size_t groups, size_t tiles_per_group,
                         uint64_t seed) {
  const size_t tile_side = 4;
  const size_t total = groups * tiles_per_group;
  auto data =
      std::make_unique<table::Matrix>(tile_side, tile_side * total);
  rng::Xoshiro256 gen(seed);
  std::vector<int> group(total);
  for (size_t t = 0; t < total; ++t) {
    group[t] = static_cast<int>(t % groups);
    const double level = 100.0 * static_cast<double>(1 + group[t]);
    for (size_t r = 0; r < tile_side; ++r) {
      for (size_t c = 0; c < tile_side; ++c) {
        (*data)(r, t * tile_side + c) = level + gen.NextDouble();
      }
    }
  }
  auto grid = table::TileGrid::Create(data.get(), tile_side, tile_side);
  return GroupedTiles{std::move(data), std::move(grid).value(),
                      std::move(group)};
}

TEST(NeighborBeforeTest, IsStrictWeakOrderWithNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Neighbor real_a{1, 2.0};
  const Neighbor real_b{2, 3.0};
  const Neighbor nan_a{3, nan};
  const Neighbor nan_b{4, nan};

  // Irreflexivity, including on NaN (the old `a != b` test violated this).
  EXPECT_FALSE(NeighborBefore(real_a, real_a));
  EXPECT_FALSE(NeighborBefore(nan_a, nan_a));
  // NaN orders after every real distance, never before.
  EXPECT_TRUE(NeighborBefore(real_a, nan_a));
  EXPECT_FALSE(NeighborBefore(nan_a, real_a));
  // NaN vs NaN falls back to the index tie-break (asymmetric, total).
  EXPECT_TRUE(NeighborBefore(nan_a, nan_b));
  EXPECT_FALSE(NeighborBefore(nan_b, nan_a));
  // Real distances order as usual.
  EXPECT_TRUE(NeighborBefore(real_a, real_b));
  EXPECT_FALSE(NeighborBefore(real_b, real_a));
  // Equal distances tie-break by index.
  EXPECT_TRUE(NeighborBefore(Neighbor{0, 2.0}, Neighbor{5, 2.0}));
}

TEST(SmallestKNeighborsTest, NaNDistancesSortLastDeterministically) {
  // Regression: NaN distances used to break std::partial_sort's strict weak
  // ordering contract (UB — garbage results or a crash). They must now sort
  // after every real distance, with index tie-breaks keeping the output
  // deterministic.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Neighbor> all = {
      {0, 4.0}, {1, nan}, {2, 1.0}, {3, nan}, {4, 2.0}, {5, nan}, {6, 3.0},
  };
  const auto top = SmallestKNeighbors(all, 6);
  ASSERT_EQ(top.size(), 6u);
  EXPECT_EQ(top[0].index, 2u);
  EXPECT_EQ(top[1].index, 4u);
  EXPECT_EQ(top[2].index, 6u);
  EXPECT_EQ(top[3].index, 0u);
  // The NaN tail is ordered by index.
  EXPECT_EQ(top[4].index, 1u);
  EXPECT_EQ(top[5].index, 3u);
}

TEST(TopKBySketchTest, NaNSketchValuesDoNotCrashOrLeakIntoTopK) {
  // Inject NaN into a few corpus sketches (NaN data produces NaN estimates);
  // the search must survive and rank every clean tile ahead of the poisoned
  // ones.
  GroupedTiles setup = MakeGrouped(2, 6, 11);
  SketchParams params{.p = 1.0, .k = 32, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  sketches[2].values.assign(sketches[2].values.size(), nan);
  sketches[7].values.assign(sketches[7].values.size(), nan);

  const size_t n = setup.grid.num_tiles();
  const auto neighbors =
      TopKBySketch(sketches[0], sketches, *estimator, n - 1, 0);
  ASSERT_EQ(neighbors.size(), n - 1);
  // The poisoned tiles form the NaN tail, in index order; every clean tile
  // ranks ahead of them.
  for (size_t i = 0; i + 2 < neighbors.size(); ++i) {
    EXPECT_FALSE(std::isnan(neighbors[i].distance)) << "position " << i;
  }
  EXPECT_EQ(neighbors[neighbors.size() - 2].index, 2u);
  EXPECT_EQ(neighbors[neighbors.size() - 1].index, 7u);
  // Deterministic: a second run reproduces the exact ordering.
  const auto again =
      TopKBySketch(sketches[0], sketches, *estimator, n - 1, 0);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_EQ(neighbors[i].index, again[i].index) << "position " << i;
  }
}

TEST(TopKBySketchTest, FindsSameGroupNeighbors) {
  GroupedTiles setup = MakeGrouped(4, 8, 1);
  SketchParams params{.p = 1.0, .k = 64, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);

  const size_t query = 5;
  const auto neighbors =
      TopKBySketch(sketches[query], sketches, *estimator, 7, query);
  ASSERT_EQ(neighbors.size(), 7u);
  for (const Neighbor& neighbor : neighbors) {
    EXPECT_EQ(setup.group[neighbor.index], setup.group[query])
        << "neighbor " << neighbor.index;
    EXPECT_NE(neighbor.index, query);
  }
}

TEST(TopKBySketchTest, SortedAscendingAndDeduplicated) {
  GroupedTiles setup = MakeGrouped(3, 6, 2);
  SketchParams params{.p = 1.0, .k = 64, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);
  const auto neighbors =
      TopKBySketch(sketches[0], sketches, *estimator, 10, 0);
  std::set<size_t> seen;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(neighbors[i].distance, neighbors[i - 1].distance);
    }
    EXPECT_TRUE(seen.insert(neighbors[i].index).second);
  }
}

TEST(TopKBySketchTest, KLargerThanCorpusReturnsAll) {
  GroupedTiles setup = MakeGrouped(2, 3, 3);
  SketchParams params{.p = 1.0, .k = 16, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);
  const auto neighbors =
      TopKBySketch(sketches[0], sketches, *estimator, 100, 0);
  EXPECT_EQ(neighbors.size(), setup.grid.num_tiles() - 1);
}

TEST(TopKExactTest, MatchesBruteForceOrdering) {
  GroupedTiles setup = MakeGrouped(4, 4, 4);
  const auto neighbors = TopKExact(setup.grid, 1.0, 3, 5);
  ASSERT_EQ(neighbors.size(), 5u);
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i].distance, neighbors[i - 1].distance);
  }
  // The top 3 neighbors must be the other tiles of the query's group.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(setup.group[neighbors[i].index], setup.group[3]);
  }
}

TEST(TopKFilterRefineTest, ValidatesArguments) {
  GroupedTiles setup = MakeGrouped(2, 4, 5);
  SketchParams params{.p = 1.0, .k = 16, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);

  EXPECT_FALSE(
      TopKFilterRefine(setup.grid, sketches, *estimator, 99, 2, 4).ok());
  EXPECT_FALSE(
      TopKFilterRefine(setup.grid, sketches, *estimator, 0, 0, 4).ok());
  EXPECT_FALSE(
      TopKFilterRefine(setup.grid, sketches, *estimator, 0, 5, 4).ok());
  EXPECT_FALSE(TopKFilterRefine(setup.grid, sketches, *estimator, 0, 2,
                                setup.grid.num_tiles())
                   .ok());
  std::vector<Sketch> short_sketches(sketches.begin(), sketches.end() - 1);
  EXPECT_FALSE(
      TopKFilterRefine(setup.grid, short_sketches, *estimator, 0, 2, 4).ok());
}

TEST(TopKFilterRefineTest, ReturnsExactDistances) {
  GroupedTiles setup = MakeGrouped(3, 8, 6);
  SketchParams params{.p = 1.0, .k = 96, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);

  const size_t query = 7;
  auto refined =
      TopKFilterRefine(setup.grid, sketches, *estimator, query, 3, 10);
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined->size(), 3u);
  for (const Neighbor& neighbor : *refined) {
    const double exact = LpDistance(setup.grid.Tile(query),
                                    setup.grid.Tile(neighbor.index), 1.0);
    EXPECT_DOUBLE_EQ(neighbor.distance, exact);
  }
}

TEST(TopKFilterRefineTest, HighCandidateCountRecoversExactTopK) {
  GroupedTiles setup = MakeGrouped(4, 8, 7);
  SketchParams params{.p = 1.0, .k = 96, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);

  const size_t query = 2;
  const size_t n = setup.grid.num_tiles();
  auto refined =
      TopKFilterRefine(setup.grid, sketches, *estimator, query, 5, n - 1);
  const auto exact = TopKExact(setup.grid, 1.0, query, 5);
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*refined)[i].index, exact[i].index);
    EXPECT_DOUBLE_EQ((*refined)[i].distance, exact[i].distance);
  }
}

TEST(TopKFilterRefineTest, ModestCandidateBufferGivesHighRecall) {
  GroupedTiles setup = MakeGrouped(5, 10, 8);
  SketchParams params{.p = 1.0, .k = 128, .seed = 3};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, setup.grid);

  size_t hits = 0;
  size_t total = 0;
  for (size_t query = 0; query < setup.grid.num_tiles(); query += 5) {
    const auto exact = TopKExact(setup.grid, 1.0, query, 5);
    auto refined =
        TopKFilterRefine(setup.grid, sketches, *estimator, query, 5, 15);
    ASSERT_TRUE(refined.ok());
    std::set<size_t> exact_set;
    for (const Neighbor& neighbor : exact) exact_set.insert(neighbor.index);
    for (const Neighbor& neighbor : *refined) {
      if (exact_set.count(neighbor.index) > 0) ++hits;
    }
    total += exact.size();
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace tabsketch::core
