#include <gtest/gtest.h>

#include "core/ondemand.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"
#include "util/parallel.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble();
  return out;
}

class OnDemandTest : public ::testing::Test {
 protected:
  OnDemandTest()
      : data_(RandomTable(16, 16, 3)),
        grid_(*table::TileGrid::Create(&data_, 4, 4)),
        sketcher_(Sketcher::Create({.p = 1.0, .k = 8, .seed = 77}).value()) {}

  table::Matrix data_;
  table::TileGrid grid_;
  Sketcher sketcher_;
};

TEST_F(OnDemandTest, ComputesLazily) {
  OnDemandSketchCache cache(&sketcher_, &grid_);
  EXPECT_EQ(cache.computed(), 0u);
  cache.ForTile(3);
  EXPECT_EQ(cache.computed(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.ForTile(3);
  EXPECT_EQ(cache.computed(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  cache.ForTile(0);
  EXPECT_EQ(cache.computed(), 2u);
}

TEST_F(OnDemandTest, MatchesEagerSketches) {
  OnDemandSketchCache cache(&sketcher_, &grid_);
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  ASSERT_EQ(eager.size(), grid_.num_tiles());
  for (size_t t = 0; t < grid_.num_tiles(); ++t) {
    EXPECT_EQ(cache.ForTile(t).values, eager[t].values) << "tile " << t;
  }
}

TEST_F(OnDemandTest, ClearResetsState) {
  OnDemandSketchCache cache(&sketcher_, &grid_);
  cache.ForTile(1);
  cache.ForTile(1);
  cache.Clear();
  EXPECT_EQ(cache.computed(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.ForTile(1);
  EXPECT_EQ(cache.computed(), 1u);
}

TEST_F(OnDemandTest, OutOfRangeTileAborts) {
  OnDemandSketchCache cache(&sketcher_, &grid_);
  EXPECT_DEATH(cache.ForTile(grid_.num_tiles()), "out of");
}

TEST_F(OnDemandTest, EagerSketchCountMatchesTiles) {
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  EXPECT_EQ(eager.size(), 16u);
  for (const Sketch& sketch : eager) EXPECT_EQ(sketch.size(), 8u);
}

TEST_F(OnDemandTest, ConcurrentForTileComputesEachSlotOnce) {
  // Hammer every tile from several threads at once: per-slot once_flags must
  // yield exactly one computation per tile, correct values, and
  // hits + computed == total calls.
  OnDemandSketchCache cache(&sketcher_, &grid_);
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  const size_t tiles = grid_.num_tiles();
  constexpr size_t kRounds = 8;
  util::ParallelFor(tiles * kRounds, 8, [&](size_t i) {
    const size_t tile = i % tiles;
    EXPECT_EQ(cache.ForTile(tile).values, eager[tile].values);
  });
  EXPECT_EQ(cache.computed(), tiles);
  EXPECT_EQ(cache.hits(), tiles * kRounds - tiles);
}

}  // namespace
}  // namespace tabsketch::core
