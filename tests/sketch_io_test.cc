#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/sketch_io.h"
#include "rng/xoshiro256.h"

namespace tabsketch::core {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SketchSet MakeSet() {
  SketchSet set;
  set.params = {.p = 0.5, .k = 6, .seed = 1234};
  set.object_rows = 8;
  set.object_cols = 16;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 10; ++i) {
    Sketch sketch;
    sketch.values.resize(6);
    for (double& v : sketch.values) v = gen.NextDouble() * 100.0 - 50.0;
    set.sketches.push_back(std::move(sketch));
  }
  return set;
}

TEST(SketchIoTest, RoundTrip) {
  const SketchSet original = MakeSet();
  const std::string path = TempPath("tabsketch_sketchset.bin");
  ASSERT_TRUE(WriteSketchSet(original, path).ok());
  auto loaded = ReadSketchSet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->params, original.params);
  EXPECT_EQ(loaded->object_rows, original.object_rows);
  EXPECT_EQ(loaded->object_cols, original.object_cols);
  ASSERT_EQ(loaded->sketches.size(), original.sketches.size());
  for (size_t i = 0; i < original.sketches.size(); ++i) {
    EXPECT_EQ(loaded->sketches[i].values, original.sketches[i].values);
  }
  std::remove(path.c_str());
}

TEST(SketchIoTest, SuccessfulWriteLeavesNoTempFile) {
  // WriteSketchSet stages into path + ".tmp" and renames into place, so a
  // crash mid-write can never leave a half-written file at the destination.
  const std::string path = TempPath("tabsketch_sketchset_atomic.bin");
  ASSERT_TRUE(WriteSketchSet(MakeSet(), path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temp file must be renamed away";
  std::remove(path.c_str());
}

TEST(SketchIoTest, UnwritablePathFailsWithoutTempResidue) {
  const std::string path =
      TempPath("no_such_dir_tabsketch_sets") + "/set.bin";
  EXPECT_FALSE(WriteSketchSet(MakeSet(), path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SketchIoTest, EmptySetRoundTrips) {
  SketchSet set;
  set.params = {.p = 1.0, .k = 4, .seed = 1};
  const std::string path = TempPath("tabsketch_sketchset_empty.bin");
  ASSERT_TRUE(WriteSketchSet(set, path).ok());
  auto loaded = ReadSketchSet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->sketches.empty());
  std::remove(path.c_str());
}

TEST(SketchIoTest, RejectsInconsistentSketchLengths) {
  SketchSet set = MakeSet();
  set.sketches[3].values.resize(2);  // violates k = 6
  const std::string path = TempPath("tabsketch_sketchset_bad.bin");
  EXPECT_FALSE(WriteSketchSet(set, path).ok());
}

TEST(SketchIoTest, RejectsInvalidParams) {
  SketchSet set = MakeSet();
  set.params.p = 9.0;
  EXPECT_FALSE(WriteSketchSet(set, TempPath("x.bin")).ok());
}

TEST(SketchIoTest, RejectsGarbageFile) {
  const std::string path = TempPath("tabsketch_sketchset_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(ReadSketchSet(path).ok());
  std::remove(path.c_str());
}

TEST(SketchIoTest, RejectsTruncatedFile) {
  const SketchSet original = MakeSet();
  const std::string path = TempPath("tabsketch_sketchset_trunc.bin");
  ASSERT_TRUE(WriteSketchSet(original, path).ok());
  // Truncate the payload.
  std::filesystem::resize_file(path, 64);
  EXPECT_FALSE(ReadSketchSet(path).ok());
  std::remove(path.c_str());
}

TEST(SketchIoTest, MissingFileIsIOError) {
  auto loaded = ReadSketchSet(TempPath("does_not_exist_tsks.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Golden-file tests: tests/golden/sketch_set_v1.skt pins the exact on-disk
// bytes (header layout, field order, payload packing). The set is rebuilt
// here from the same literal, exactly-representable values the generator
// (tests/golden/generate_golden.py) uses, so a byte mismatch means the
// serialization format changed — which requires a version bump, not a
// silently different file.

std::string GoldenPath(const std::string& name) {
  return std::string(TABSKETCH_TEST_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SketchSet GoldenSet(double sparsity = 1.0) {
  SketchSet set;
  set.params = {.p = 0.5, .k = 6, .seed = 1234, .sparsity = sparsity};
  set.object_rows = 8;
  set.object_cols = 16;
  for (int s = 0; s < 3; ++s) {
    Sketch sketch;
    sketch.values.resize(6);
    for (int j = 0; j < 6; ++j) {
      sketch.values[j] = s * 1.5 + j * 0.25 - 2.0;
    }
    set.sketches.push_back(std::move(sketch));
  }
  return set;
}

TEST(SketchIoGoldenTest, SerializationIsByteStable) {
  // The writer emits version 2 (64-byte header with the family sparsity);
  // the v2 fixture pins those bytes for a sparsity-0.25 family.
  const std::string golden = ReadFileBytes(GoldenPath("sketch_set_v2.skt"));
  ASSERT_FALSE(golden.empty()) << "missing golden fixture";
  const std::string path = TempPath("tabsketch_sketchset_golden.bin");
  ASSERT_TRUE(WriteSketchSet(GoldenSet(0.25), path).ok());
  EXPECT_EQ(ReadFileBytes(path), golden)
      << "sketch-set serialization bytes changed; if intentional, bump the "
         "format version and regenerate tests/golden";
  std::remove(path.c_str());
}

TEST(SketchIoGoldenTest, GoldenFileRoundTrips) {
  // The v1 fixture has no sparsity field; reading it must imply a dense
  // family (sparsity 1.0) so pre-v2 archives keep loading byte-identically.
  auto loaded = ReadSketchSet(GoldenPath("sketch_set_v1.skt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SketchSet expected = GoldenSet();
  EXPECT_EQ(loaded->params, expected.params);
  EXPECT_EQ(loaded->params.sparsity, 1.0);
  EXPECT_EQ(loaded->object_rows, expected.object_rows);
  EXPECT_EQ(loaded->object_cols, expected.object_cols);
  ASSERT_EQ(loaded->sketches.size(), expected.sketches.size());
  for (size_t i = 0; i < expected.sketches.size(); ++i) {
    EXPECT_EQ(loaded->sketches[i].values, expected.sketches[i].values);
  }
}

TEST(SketchIoGoldenTest, V2GoldenFileRoundTrips) {
  auto loaded = ReadSketchSet(GoldenPath("sketch_set_v2.skt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SketchSet expected = GoldenSet(0.25);
  EXPECT_EQ(loaded->params, expected.params);
  EXPECT_EQ(loaded->params.sparsity, 0.25);
  ASSERT_EQ(loaded->sketches.size(), expected.sketches.size());
  for (size_t i = 0; i < expected.sketches.size(); ++i) {
    EXPECT_EQ(loaded->sketches[i].values, expected.sketches[i].values);
  }
}

TEST(SketchIoGoldenTest, CorruptedSparsityIsRejected) {
  // Out-of-range sparsity in a v2 header (offset 56) must fail parameter
  // validation instead of constructing an unusable family.
  std::string bytes = ReadFileBytes(GoldenPath("sketch_set_v2.skt"));
  ASSERT_FALSE(bytes.empty());
  const double bad = 3.0;
  std::memcpy(bytes.data() + 56, &bad, sizeof(bad));
  const std::string path = TempPath("tabsketch_sketchset_badsparsity.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadSketchSet(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SketchIoGoldenTest, TruncatedSparsityFieldIsCleanIOError) {
  // A v2 file cut mid-sparsity (60 of 64 header bytes) must be IOError.
  const std::string bytes = ReadFileBytes(GoldenPath("sketch_set_v2.skt"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_sketchset_shortsparsity.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), 60);
  }
  auto loaded = ReadSketchSet(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SketchIoGoldenTest, CorruptedMagicIsCleanIOError) {
  std::string bytes = ReadFileBytes(GoldenPath("sketch_set_v1.skt"));
  ASSERT_FALSE(bytes.empty());
  bytes[0] = 'X';  // break the magic
  const std::string path = TempPath("tabsketch_sketchset_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadSketchSet(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SketchIoGoldenTest, TruncatedHeaderIsCleanIOError) {
  const std::string bytes = ReadFileBytes(GoldenPath("sketch_set_v1.skt"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_sketchset_shorthdr.bin");
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{17}, size_t{55}}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    auto loaded = ReadSketchSet(path);
    EXPECT_FALSE(loaded.ok()) << "header truncated to " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

TEST(SketchIoGoldenTest, OversizedCountIsCleanIOError) {
  // Blow the count field up to claim far more payload than the file holds;
  // the overflow-safe size check must reject it without allocating.
  std::string bytes = ReadFileBytes(GoldenPath("sketch_set_v1.skt"));
  ASSERT_FALSE(bytes.empty());
  const uint64_t huge = ~uint64_t{0} / 16;
  std::memcpy(bytes.data() + 48, &huge, sizeof(huge));  // count at offset 48
  const std::string path = TempPath("tabsketch_sketchset_hugecount.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadSketchSet(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabsketch::core
