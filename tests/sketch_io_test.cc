#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/sketch_io.h"
#include "rng/xoshiro256.h"

namespace tabsketch::core {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SketchSet MakeSet() {
  SketchSet set;
  set.params = {.p = 0.5, .k = 6, .seed = 1234};
  set.object_rows = 8;
  set.object_cols = 16;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 10; ++i) {
    Sketch sketch;
    sketch.values.resize(6);
    for (double& v : sketch.values) v = gen.NextDouble() * 100.0 - 50.0;
    set.sketches.push_back(std::move(sketch));
  }
  return set;
}

TEST(SketchIoTest, RoundTrip) {
  const SketchSet original = MakeSet();
  const std::string path = TempPath("tabsketch_sketchset.bin");
  ASSERT_TRUE(WriteSketchSet(original, path).ok());
  auto loaded = ReadSketchSet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->params, original.params);
  EXPECT_EQ(loaded->object_rows, original.object_rows);
  EXPECT_EQ(loaded->object_cols, original.object_cols);
  ASSERT_EQ(loaded->sketches.size(), original.sketches.size());
  for (size_t i = 0; i < original.sketches.size(); ++i) {
    EXPECT_EQ(loaded->sketches[i].values, original.sketches[i].values);
  }
  std::remove(path.c_str());
}

TEST(SketchIoTest, EmptySetRoundTrips) {
  SketchSet set;
  set.params = {.p = 1.0, .k = 4, .seed = 1};
  const std::string path = TempPath("tabsketch_sketchset_empty.bin");
  ASSERT_TRUE(WriteSketchSet(set, path).ok());
  auto loaded = ReadSketchSet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->sketches.empty());
  std::remove(path.c_str());
}

TEST(SketchIoTest, RejectsInconsistentSketchLengths) {
  SketchSet set = MakeSet();
  set.sketches[3].values.resize(2);  // violates k = 6
  const std::string path = TempPath("tabsketch_sketchset_bad.bin");
  EXPECT_FALSE(WriteSketchSet(set, path).ok());
}

TEST(SketchIoTest, RejectsInvalidParams) {
  SketchSet set = MakeSet();
  set.params.p = 9.0;
  EXPECT_FALSE(WriteSketchSet(set, TempPath("x.bin")).ok());
}

TEST(SketchIoTest, RejectsGarbageFile) {
  const std::string path = TempPath("tabsketch_sketchset_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(ReadSketchSet(path).ok());
  std::remove(path.c_str());
}

TEST(SketchIoTest, RejectsTruncatedFile) {
  const SketchSet original = MakeSet();
  const std::string path = TempPath("tabsketch_sketchset_trunc.bin");
  ASSERT_TRUE(WriteSketchSet(original, path).ok());
  // Truncate the payload.
  std::filesystem::resize_file(path, 64);
  EXPECT_FALSE(ReadSketchSet(path).ok());
  std::remove(path.c_str());
}

TEST(SketchIoTest, MissingFileIsIOError) {
  auto loaded = ReadSketchSet(TempPath("does_not_exist_tsks.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

}  // namespace
}  // namespace tabsketch::core
