#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/quantized_sketch.h"
#include "rng/xoshiro256.h"
#include "serve/ingest.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "table/matrix.h"
#include "table/table_io.h"
#include "util/status.h"

namespace tabsketch::serve {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 10.0;
  return out;
}

table::Matrix ConcatCols(const table::Matrix& left,
                         const table::Matrix& right) {
  table::Matrix out(left.rows(), left.cols() + right.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < left.cols(); ++c) out.At(r, c) = left.At(r, c);
    for (size_t c = 0; c < right.cols(); ++c) {
      out.At(r, left.cols() + c) = right.At(r, c);
    }
  }
  return out;
}

table::Matrix DropLeadingCols(const table::Matrix& in, size_t cols) {
  table::Matrix out(in.rows(), in.cols() - cols);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out.At(r, c) = in.At(r, cols + c);
  }
  return out;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Blocking line-protocol client (same shape as serve_test.cc's).
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  void SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  std::string RecvLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  std::string Ask(const std::string& line) {
    SendLine(line);
    return RecvLine();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

constexpr size_t kRows = 24;
constexpr size_t kTileRows = 6;
constexpr size_t kTileCols = 6;

/// Seed table (2 tile columns) plus three pieces: a full tile column, a
/// sub-tile piece that leaves pending columns, and the completion piece.
class StreamServeTest : public ::testing::Test {
 protected:
  StreamServeTest()
      : seed_(RandomTable(kRows, 2 * kTileCols, 41)),
        piece_full_(RandomTable(kRows, kTileCols, 42)),
        piece_partial_(RandomTable(kRows, kTileCols / 2, 43)),
        piece_complete_(RandomTable(kRows, kTileCols / 2, 44)) {}

  void SetUp() override {
    const std::string prefix =
        std::string("serve_stream_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_";
    seed_path_ = Write(prefix + "seed.tbl", seed_);
    piece_full_path_ = Write(prefix + "full.tbl", piece_full_);
    piece_partial_path_ = Write(prefix + "partial.tbl", piece_partial_);
    piece_complete_path_ = Write(prefix + "complete.tbl", piece_complete_);
  }

  void TearDown() override {
    for (const std::string& path : written_) std::remove(path.c_str());
  }

  std::string Write(const std::string& name, const table::Matrix& matrix) {
    const std::string path = TempPath(name);
    EXPECT_TRUE(table::WriteBinary(matrix, path).ok());
    written_.push_back(path);
    return path;
  }

  SnapshotSpec Spec(core::QuantKind quant, size_t threads,
                    bool refine = false) const {
    SnapshotSpec spec;
    spec.table_path = seed_path_;
    spec.tile_rows = kTileRows;
    spec.tile_cols = kTileCols;
    spec.params = {.p = 1.0, .k = 32, .seed = 7};
    spec.engine.threads = threads;
    spec.engine.refine = refine;
    spec.engine.quant = quant;
    return spec;
  }

  /// Every pairwise distance plus a knn per tile, as protocol lines.
  std::vector<std::string> QueryLines(size_t tiles) const {
    std::vector<std::string> lines;
    for (size_t i = 0; i < tiles; ++i) {
      lines.push_back("distance " + std::to_string(i) + " " +
                      std::to_string((i + 1) % tiles));
      lines.push_back("knn " + std::to_string(i) + " 3");
    }
    return lines;
  }

  std::vector<std::string> Answers(const Snapshot& snapshot,
                                   const std::vector<std::string>& lines) {
    std::vector<QueryRequest> batch;
    for (size_t i = 0; i < lines.size(); ++i) {
      auto parsed = ParseBatchLine(lines[i], i + 1);
      EXPECT_TRUE(parsed.ok()) << lines[i];
      if (parsed.ok() && parsed->has_value()) batch.push_back(**parsed);
    }
    auto results = snapshot.engine().Run(batch);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    return results.ok() ? *results : std::vector<std::string>{};
  }

  /// Cold-path reference: Snapshot::Create over `window` written to a file,
  /// with the same params/engine options.
  std::shared_ptr<const Snapshot> ColdSnapshot(const table::Matrix& window,
                                               const SnapshotSpec& like,
                                               const std::string& name) {
    SnapshotSpec spec = like;
    spec.table_path = Write(name, window);
    auto snapshot = Snapshot::Create(spec);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    return snapshot.ok() ? *snapshot : nullptr;
  }

  table::Matrix seed_;
  table::Matrix piece_full_;
  table::Matrix piece_partial_;
  table::Matrix piece_complete_;
  std::string seed_path_;
  std::string piece_full_path_;
  std::string piece_partial_path_;
  std::string piece_complete_path_;
  std::vector<std::string> written_;
};

TEST_F(StreamServeTest, CreateValidatesTheSpec) {
  SnapshotSpec no_table = Spec(core::QuantKind::kOff, 1);
  no_table.table_path.clear();
  EXPECT_FALSE(StreamingIngest::Create(no_table).ok());

  SnapshotSpec with_sketches = Spec(core::QuantKind::kOff, 1);
  with_sketches.sketches_path = "whatever.skt";
  auto sketches = StreamingIngest::Create(with_sketches);
  ASSERT_FALSE(sketches.ok());
  EXPECT_EQ(sketches.status().code(), util::StatusCode::kInvalidArgument);

  SnapshotSpec with_cache = Spec(core::QuantKind::kOff, 1);
  with_cache.cache_bytes = 1 << 20;
  auto cache = StreamingIngest::Create(with_cache);
  ASSERT_FALSE(cache.ok());
  EXPECT_EQ(cache.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(StreamServeTest, InitialGenerationMatchesColdSnapshot) {
  for (const core::QuantKind quant :
       {core::QuantKind::kOff, core::QuantKind::kInt8}) {
    const SnapshotSpec spec = Spec(quant, 2);
    auto ingest = StreamingIngest::Create(spec);
    ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
    auto cold = Snapshot::Create(spec);
    ASSERT_TRUE(cold.ok());
    const std::vector<std::string> lines =
        QueryLines((*ingest)->initial()->num_tiles());
    EXPECT_EQ(Answers(*(*ingest)->initial(), lines), Answers(**cold, lines));
  }
}

TEST_F(StreamServeTest, AppendMatchesColdSnapshotByteForByte) {
  for (const core::QuantKind quant :
       {core::QuantKind::kOff, core::QuantKind::kInt8,
        core::QuantKind::kInt16}) {
    for (const size_t threads : {size_t{1}, size_t{3}}) {
      SCOPED_TRACE(std::string("quant=") + core::QuantKindName(quant) +
                   " threads=" + std::to_string(threads));
      const SnapshotSpec spec = Spec(quant, threads);
      auto ingest = StreamingIngest::Create(spec);
      ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();

      SnapshotHolder holder((*ingest)->initial());
      auto appended = (*ingest)->Append(piece_full_path_, &holder);
      ASSERT_TRUE(appended.ok()) << appended.status().ToString();
      EXPECT_EQ(appended->appended_cols, kTileCols);
      EXPECT_EQ(appended->new_tiles, kRows / kTileRows);
      EXPECT_EQ(appended->reused_tiles, 2 * (kRows / kTileRows));
      EXPECT_EQ(holder.Current().get(), appended->snapshot.get());

      const std::shared_ptr<const Snapshot> cold = ColdSnapshot(
          ConcatCols(seed_, piece_full_), spec,
          std::string("stitched_") + core::QuantKindName(quant) + "_" +
              std::to_string(threads) + ".tbl");
      ASSERT_NE(cold, nullptr);
      ASSERT_EQ(appended->snapshot->num_tiles(), cold->num_tiles());
      const std::vector<std::string> lines = QueryLines(cold->num_tiles());
      EXPECT_EQ(Answers(*appended->snapshot, lines), Answers(*cold, lines));
    }
  }
}

TEST_F(StreamServeTest, SubTilePieceLeavesAnswersUntouched) {
  const SnapshotSpec spec = Spec(core::QuantKind::kInt8, 1);
  auto ingest = StreamingIngest::Create(spec);
  ASSERT_TRUE(ingest.ok());
  SnapshotHolder holder((*ingest)->initial());

  auto partial = (*ingest)->Append(piece_partial_path_, &holder);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->new_tiles, 0u);
  EXPECT_EQ(partial->window.pending_cols, kTileCols / 2);
  // No new tiles: answers are the seed generation's, byte for byte.
  const std::vector<std::string> lines =
      QueryLines((*ingest)->initial()->num_tiles());
  EXPECT_EQ(Answers(*partial->snapshot, lines),
            Answers(*(*ingest)->initial(), lines));

  // The completion piece finishes the tile column the partial one started.
  auto complete = (*ingest)->Append(piece_complete_path_, &holder);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->new_tiles, kRows / kTileRows);
  EXPECT_EQ(complete->window.pending_cols, 0u);
  const std::shared_ptr<const Snapshot> cold = ColdSnapshot(
      ConcatCols(ConcatCols(seed_, piece_partial_), piece_complete_), spec,
      "stitched_subtile.tbl");
  ASSERT_NE(cold, nullptr);
  const std::vector<std::string> all = QueryLines(cold->num_tiles());
  EXPECT_EQ(Answers(*complete->snapshot, all), Answers(*cold, all));
}

TEST_F(StreamServeTest, RetireMatchesColdSuffixSnapshot) {
  for (const core::QuantKind quant :
       {core::QuantKind::kOff, core::QuantKind::kInt8}) {
    SCOPED_TRACE(std::string("quant=") + core::QuantKindName(quant));
    const SnapshotSpec spec = Spec(quant, 2);
    auto ingest = StreamingIngest::Create(spec);
    ASSERT_TRUE(ingest.ok());
    SnapshotHolder holder((*ingest)->initial());
    ASSERT_TRUE((*ingest)->Append(piece_full_path_, &holder).ok());

    auto retired = (*ingest)->Retire(1, &holder);
    ASSERT_TRUE(retired.ok()) << retired.status().ToString();
    EXPECT_EQ(retired->retired_tile_cols, 1u);
    EXPECT_EQ(retired->window.start_tile_col, 1u);
    EXPECT_EQ(holder.Current().get(), retired->snapshot.get());

    // After a retire-driven range shrink the reused (wider) map means code
    // BYTES may differ from a cold rebuild — the answers must not.
    const std::shared_ptr<const Snapshot> cold = ColdSnapshot(
        DropLeadingCols(ConcatCols(seed_, piece_full_), kTileCols), spec,
        std::string("suffix_") + core::QuantKindName(quant) + ".tbl");
    ASSERT_NE(cold, nullptr);
    ASSERT_EQ(retired->snapshot->num_tiles(), cold->num_tiles());
    const std::vector<std::string> lines = QueryLines(cold->num_tiles());
    EXPECT_EQ(Answers(*retired->snapshot, lines), Answers(*cold, lines));
  }
}

TEST_F(StreamServeTest, RefinedServingRefusesToRetireTheWholeWindow) {
  const SnapshotSpec spec = Spec(core::QuantKind::kOff, 1, /*refine=*/true);
  auto ingest = StreamingIngest::Create(spec);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  SnapshotHolder holder((*ingest)->initial());
  const size_t swaps_before = holder.swaps();
  auto retired = (*ingest)->Retire(2, &holder);
  ASSERT_FALSE(retired.ok());
  EXPECT_EQ(retired.status().code(), util::StatusCode::kFailedPrecondition);
  // Nothing was published: the previous generation keeps serving.
  EXPECT_EQ(holder.swaps(), swaps_before);
  EXPECT_TRUE((*ingest)->Retire(1, &holder).ok());
}

TEST_F(StreamServeTest, WireVerbsRoundTrip) {
  const SnapshotSpec spec = Spec(core::QuantKind::kInt8, 2);
  auto ingest = StreamingIngest::Create(spec);
  ASSERT_TRUE(ingest.ok());
  SnapshotHolder holder((*ingest)->initial());
  ServerOptions options;
  options.ingest = ingest->get();
  options.enable_reload = false;
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  TestClient client((*server)->port());

  EXPECT_EQ(client.Ask("window"),
            "ok window tile-cols=2 start=0 pending=0 tiles=8");

  // remap depends on whether the new tiles' sketch values grew the pool
  // range, so the ack is matched up to it.
  const std::string append_ack = client.Ask("append " + piece_full_path_);
  const std::string append_prefix = "ok append " + piece_full_path_ +
                                    " cols=6 tiles=12 new=4 reused=8 "
                                    "pending=0 remap=";
  EXPECT_EQ(append_ack.rfind(append_prefix, 0), 0u) << append_ack;
  EXPECT_NE(append_ack.find(" swaps=1"), std::string::npos) << append_ack;

  // Post-append wire answers match the published generation's engine.
  const std::vector<std::string> lines = QueryLines(12);
  const std::vector<std::string> expected =
      Answers(*holder.Current(), lines);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(client.Ask(lines[i]), expected[i]) << lines[i];
  }

  EXPECT_EQ(client.Ask("retire 1"), "ok retire 1 tiles=8 start=1 swaps=2");
  EXPECT_EQ(client.Ask("window"),
            "ok window tile-cols=2 start=1 pending=0 tiles=8");

  // Malformed and failing requests answer an error line and keep serving.
  EXPECT_EQ(client.Ask("append"),
            "error invalid-argument expected 'append <columns-file>'");
  EXPECT_EQ(client.Ask("retire one"),
            "error invalid-argument retire count must be a non-negative "
            "integer");
  const std::string missing = client.Ask("append /nonexistent/piece.tbl");
  EXPECT_EQ(missing.rfind("error ", 0), 0u) << missing;
  const std::string too_many = client.Ask("retire 99");
  EXPECT_EQ(too_many.rfind("error invalid-argument", 0), 0u) << too_many;
  EXPECT_EQ(client.Ask("ping"), "ok ping");
  // reload is off under ingest: generations must flow through the driver.
  EXPECT_EQ(client.Ask("reload " + seed_path_),
            "error failed-precondition reload disabled");
}

TEST_F(StreamServeTest, VerbsFailClosedWithoutIngest) {
  auto snapshot = Snapshot::Create(Spec(core::QuantKind::kOff, 1));
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(std::move(*snapshot));
  auto server = Server::Start(&holder, ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestClient client((*server)->port());
  const std::string expected =
      "error failed-precondition streaming ingest disabled (start serve "
      "with --ingest)";
  EXPECT_EQ(client.Ask("append some.tbl"), expected);
  EXPECT_EQ(client.Ask("retire 1"), expected);
  EXPECT_EQ(client.Ask("window"), expected);
  EXPECT_EQ(client.Ask("ping"), "ok ping");
}

TEST_F(StreamServeTest, ConcurrentAppendsNeverMixGenerations) {
  // Hammer `append`/`retire` concurrently with query traffic: every answer
  // must match one published generation exactly — never a blend of two.
  // int8 exercises the incremental code-pool path under the same race.
  for (const core::QuantKind quant :
       {core::QuantKind::kOff, core::QuantKind::kInt8}) {
    SCOPED_TRACE(std::string("quant=") + core::QuantKindName(quant));
    const SnapshotSpec spec = Spec(quant, 2);
    auto ingest = StreamingIngest::Create(spec);
    ASSERT_TRUE(ingest.ok());
    SnapshotHolder holder((*ingest)->initial());
    ServerOptions options;
    options.ingest = ingest->get();
    options.enable_reload = false;
    options.max_inflight = 8;
    options.max_queue = 256;
    auto server = Server::Start(&holder, options);
    ASSERT_TRUE(server.ok());

    // Tiles 0..7 exist in every generation (the window never shrinks below
    // two tile columns here), so these lines are valid throughout.
    const std::vector<std::string> lines = QueryLines(8);

    std::vector<std::shared_ptr<const Snapshot>> generations;
    generations.push_back((*ingest)->initial());

    constexpr size_t kQueryThreads = 4;
    constexpr size_t kRoundsPerThread = 30;
    std::vector<std::vector<std::pair<size_t, std::string>>> seen(
        kQueryThreads);
    std::vector<std::thread> clients;
    clients.reserve(kQueryThreads);
    for (size_t t = 0; t < kQueryThreads; ++t) {
      clients.emplace_back([&, t] {
        TestClient client((*server)->port());
        for (size_t round = 0; round < kRoundsPerThread; ++round) {
          const size_t pick = (t * kRoundsPerThread + round) % lines.size();
          seen[t].push_back({pick, client.Ask(lines[pick])});
        }
      });
    }

    // Interleaved appends and retires while the clients run: grow by one
    // tile column, then slide the window forward by one.
    for (int round = 0; round < 4; ++round) {
      auto appended = (*ingest)->Append(piece_full_path_, &holder);
      ASSERT_TRUE(appended.ok()) << appended.status().ToString();
      generations.push_back(appended->snapshot);
      auto retired = (*ingest)->Retire(1, &holder);
      ASSERT_TRUE(retired.ok()) << retired.status().ToString();
      generations.push_back(retired->snapshot);
    }
    for (std::thread& thread : clients) thread.join();

    // Per-generation reference answers for every line.
    std::vector<std::set<std::string>> valid(lines.size());
    for (const auto& generation : generations) {
      const std::vector<std::string> answers = Answers(*generation, lines);
      for (size_t i = 0; i < lines.size(); ++i) valid[i].insert(answers[i]);
    }
    for (size_t t = 0; t < kQueryThreads; ++t) {
      for (const auto& [pick, answer] : seen[t]) {
        EXPECT_TRUE(valid[pick].count(answer) == 1)
            << "thread " << t << " got an answer matching no generation for "
            << lines[pick] << ": " << answer;
      }
    }
  }
}

}  // namespace
}  // namespace tabsketch::serve
