#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lp_distance.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

TEST(LpDistanceTest, L1KnownValue) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 1.0), 5.0);
}

TEST(LpDistanceTest, L2KnownValue) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(LpDistance(a, b, 2.0), 5.0);
}

TEST(LpDistanceTest, FractionalPKnownValue) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {1.0, 4.0};
  // (1^0.5 + 4^0.5)^2 = (1 + 2)^2 = 9.
  EXPECT_NEAR(LpDistance(a, b, 0.5), 9.0, 1e-12);
}

TEST(LpDistanceTest, ZeroForIdenticalVectors) {
  const std::vector<double> a = {1.5, -2.5, 3.75};
  for (double p : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    EXPECT_DOUBLE_EQ(LpDistance(a, a, p), 0.0) << "p=" << p;
  }
}

TEST(LpDistanceTest, SymmetricInArguments) {
  const std::vector<double> a = {1.0, -2.0, 0.5};
  const std::vector<double> b = {-1.0, 3.0, 2.5};
  for (double p : {0.25, 0.5, 1.0, 1.3, 2.0}) {
    EXPECT_DOUBLE_EQ(LpDistance(a, b, p), LpDistance(b, a, p)) << "p=" << p;
  }
}

TEST(LpDistanceTest, PowVariantIsMonotoneTransform) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 4.0, 7.0};
  const std::vector<double> c = {1.1, 2.1, 3.1};
  for (double p : {0.5, 1.0, 1.5, 2.0}) {
    // b is farther from a than c is; both representations must agree.
    EXPECT_GT(LpDistance(a, b, p), LpDistance(a, c, p));
    EXPECT_GT(LpDistancePow(a, b, p), LpDistancePow(a, c, p));
    EXPECT_NEAR(std::pow(LpDistancePow(a, b, p), 1.0 / p),
                LpDistance(a, b, p), 1e-12);
  }
}

TEST(LpDistanceTest, TriangleInequalityHoldsForPGeqOne) {
  const std::vector<double> x = {0.0, 1.0, -2.0};
  const std::vector<double> y = {3.0, -1.0, 0.5};
  const std::vector<double> z = {-2.0, 4.0, 1.0};
  for (double p : {1.0, 1.5, 2.0}) {
    EXPECT_LE(LpDistance(x, z, p),
              LpDistance(x, y, p) + LpDistance(y, z, p) + 1e-12)
        << "p=" << p;
  }
}

TEST(LpDistanceTest, TriangleInequalityCanFailForPBelowOne) {
  // The textbook counterexample: for p < 1 the unit "ball" is concave.
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {1.0, 0.0};
  const std::vector<double> z = {1.0, 1.0};
  const double p = 0.5;
  EXPECT_GT(LpDistance(x, z, p),
            LpDistance(x, y, p) + LpDistance(y, z, p));
}

TEST(LpDistanceTest, SmallerPDiscountsOutliers) {
  // One large outlier coordinate vs many small differences: under L2 the
  // outlier pair is farther, under L0.5 the diffuse pair is farther.
  const std::vector<double> base(16, 0.0);
  std::vector<double> outlier(16, 0.0);
  outlier[0] = 10.0;
  std::vector<double> diffuse(16, 1.2);
  EXPECT_GT(LpDistance(base, outlier, 2.0), LpDistance(base, diffuse, 2.0));
  EXPECT_LT(LpDistance(base, outlier, 0.5), LpDistance(base, diffuse, 0.5));
}

TEST(LpDistanceTest, ViewOverloadMatchesLinearized) {
  table::Matrix a(3, 4);
  table::Matrix b(3, 4);
  for (size_t i = 0; i < a.Values().size(); ++i) {
    a.Values()[i] = static_cast<double>(i);
    b.Values()[i] = static_cast<double>(i * i) * 0.1;
  }
  std::vector<double> la(a.Values().begin(), a.Values().end());
  std::vector<double> lb(b.Values().begin(), b.Values().end());
  for (double p : {0.5, 1.0, 1.7, 2.0}) {
    EXPECT_NEAR(LpDistance(a.View(), b.View(), p), LpDistance(la, lb, p),
                1e-10)
        << "p=" << p;
  }
}

TEST(LpDistanceTest, ViewOverloadRespectsWindows) {
  table::Matrix m(4, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = static_cast<double>(r * 4 + c);
  }
  // Two disjoint 2x2 windows.
  const double d =
      LpDistance(m.Window(0, 0, 2, 2), m.Window(2, 2, 2, 2), 1.0);
  // |0-10|+|1-11|+|4-14|+|5-15| = 40.
  EXPECT_DOUBLE_EQ(d, 40.0);
}

TEST(LpDistanceDeathTest, MismatchedSizesAbort) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_DEATH(LpDistance(a, b, 1.0), "different sizes");
}

TEST(LpDistanceDeathTest, NonPositivePAborts) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {2.0};
  EXPECT_DEATH(LpDistance(a, b, 0.0), "requires p > 0");
}

}  // namespace
}  // namespace tabsketch::core
