#!/usr/bin/env python3
"""Regenerates the golden serialization fixtures in this directory.

The fixtures pin the on-disk byte layout of the sketch-set (.skt, magic TSKS)
and pool (.pool, magic TSKP) formats documented in docs/FORMATS.md. The C++
golden tests (sketch_io_test.cc, pool_io_test.cc) rebuild the same artifacts
from literal values and assert byte equality against these files, so any
accidental format change — field order, widths, padding, version — fails
loudly.

All values are small multiples of powers of two, hence exactly representable
in IEEE-754 doubles: the fixtures are independent of FFT/optimization-level
floating-point details and identical on every little-endian platform.
"""

import math
import struct
from pathlib import Path

HERE = Path(__file__).resolve().parent


def sketch_set_value(sketch, component):
    return sketch * 1.5 + component * 0.25 - 2.0


def write_sketch_set():
    p, k, seed = 0.5, 6, 1234
    object_rows, object_cols, count = 8, 16, 3
    blob = struct.pack("<4sId5Q", b"TSKS", 1, p, k, seed, object_rows,
                       object_cols, count)
    for s in range(count):
        for j in range(k):
            blob += struct.pack("<d", sketch_set_value(s, j))
    (HERE / "sketch_set_v1.skt").write_bytes(blob)


def write_sketch_set_v2():
    """Version 2 appends the family sparsity (a little-endian double) to the
    header; this fixture pins the 64-byte v2 header with sparsity 0.25."""
    p, k, seed, sparsity = 0.5, 6, 1234, 0.25
    object_rows, object_cols, count = 8, 16, 3
    blob = struct.pack("<4sId5Qd", b"TSKS", 2, p, k, seed, object_rows,
                       object_cols, count, sparsity)
    for s in range(count):
        for j in range(k):
            blob += struct.pack("<d", sketch_set_value(s, j))
    (HERE / "sketch_set_v2.skt").write_bytes(blob)


def pool_plane_value(field, plane, index):
    return field * 100.0 + plane * 10.0 + index * 0.5 - 3.0


def write_pool():
    p, k, seed = 1.0, 2, 31
    data_rows, data_cols = 8, 8
    # (window_rows, window_cols, position_rows, position_cols), sorted by
    # window size exactly as SketchPool's std::map iterates.
    fields = [(2, 2, 7, 7), (4, 4, 5, 5)]
    blob = struct.pack("<4sId5Q", b"TSKP", 1, p, k, seed, data_rows,
                       data_cols, len(fields))
    for f, (wr, wc, pr, pc) in enumerate(fields):
        blob += struct.pack("<4Q", wr, wc, pr, pc)
        for plane in range(k):
            for index in range(pr * pc):
                blob += struct.pack("<d", pool_plane_value(f, plane, index))
    (HERE / "pool_v1.pool").write_bytes(blob)


def write_pool_v2():
    """TSKP version 2: the v1 layout with the family sparsity appended to the
    header (64 bytes total), pinned at sparsity 0.25."""
    p, k, seed, sparsity = 1.0, 2, 31, 0.25
    data_rows, data_cols = 8, 8
    fields = [(2, 2, 7, 7), (4, 4, 5, 5)]
    blob = struct.pack("<4sId5Qd", b"TSKP", 2, p, k, seed, data_rows,
                       data_cols, len(fields), sparsity)
    for f, (wr, wc, pr, pc) in enumerate(fields):
        blob += struct.pack("<4Q", wr, wc, pr, pc)
        for plane in range(k):
            for index in range(pr * pc):
                blob += struct.pack("<d", pool_plane_value(f, plane, index))
    (HERE / "pool_v2.pool").write_bytes(blob)


def quant_encode(value, offset, scale, max_code):
    """Mirror of QuantizedCodePool::EncodeValue (llround = half away from
    zero; q is non-negative here so floor(q + 0.5) is identical)."""
    if scale == 0.0:
        return 0
    q = (value - offset) / scale
    if not q > 0.0:
        return 0
    if q >= max_code:
        return max_code
    return int(math.floor(q + 0.5))


def write_code_pool():
    """TSKQ v1 (magic TSKQ): the int8 code pool quantized_sketch_test.cc's
    GoldenPool() builds — same sketch values as the sketch-set fixture, with
    one NaN making tile 1 unusable (all-zero code row, flag 0)."""
    p, k, seed = 0.5, 6, 1234
    object_rows, object_cols, count = 8, 16, 3
    kind, max_code = 1, 255  # int8
    values = [[sketch_set_value(s, j) for j in range(k)] for s in range(count)]
    values[1][2] = float("nan")
    finite = [v for row in values for v in row if math.isfinite(v)]
    offset = min(finite)
    scale = (max(finite) - offset) / max_code
    usable = [0 if any(not math.isfinite(v) for v in row) else 1
              for row in values]
    blob = struct.pack("<4s3Id5Qdd", b"TSKQ", 1, kind, 0, p, k, seed,
                       object_rows, object_cols, count, scale, offset)
    blob += bytes(usable)
    for s in range(count):
        for j in range(k):
            code = (quant_encode(values[s][j], offset, scale, max_code)
                    if usable[s] else 0)
            blob += struct.pack("<B", code)
    (HERE / "code_pool_v1.tskq").write_bytes(blob)


def write_code_pool_v2():
    """TSKQ version 2: the v1 layout with the family sparsity appended to the
    header (88 bytes total), pinned at sparsity 0.25."""
    p, k, seed, sparsity = 0.5, 6, 1234, 0.25
    object_rows, object_cols, count = 8, 16, 3
    kind, max_code = 1, 255  # int8
    values = [[sketch_set_value(s, j) for j in range(k)] for s in range(count)]
    values[1][2] = float("nan")
    finite = [v for row in values for v in row if math.isfinite(v)]
    offset = min(finite)
    scale = (max(finite) - offset) / max_code
    usable = [0 if any(not math.isfinite(v) for v in row) else 1
              for row in values]
    blob = struct.pack("<4s3Id5Qddd", b"TSKQ", 2, kind, 0, p, k, seed,
                       object_rows, object_cols, count, scale, offset,
                       sparsity)
    blob += bytes(usable)
    for s in range(count):
        for j in range(k):
            code = (quant_encode(values[s][j], offset, scale, max_code)
                    if usable[s] else 0)
            blob += struct.pack("<B", code)
    (HERE / "code_pool_v2.tskq").write_bytes(blob)


def append_piece_value(row, col):
    return row * 2.0 + col * 0.5 - 4.0


def write_append_piece():
    """TSKT v1 (magic TSKT): the column piece streaming ingest appends — the
    same binary table format ReadBinary/WriteBinary speak, pinned here
    because the `append` wire verb and `tabsketch ingest` read it directly
    (streaming_test.cc asserts the parse and the error paths on truncated /
    corrupted variants built from these bytes)."""
    rows, cols = 4, 3
    blob = struct.pack("<4sIQQ", b"TSKT", 1, rows, cols)
    for r in range(rows):
        for c in range(cols):
            blob += struct.pack("<d", append_piece_value(r, c))
    (HERE / "append_piece_v1.tbl").write_bytes(blob)


if __name__ == "__main__":
    write_sketch_set()
    write_sketch_set_v2()
    write_pool()
    write_pool_v2()
    write_code_pool()
    write_code_pool_v2()
    write_append_piece()
    print("golden fixtures regenerated in", HERE)
