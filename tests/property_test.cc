// Property-based sweeps over the p grid and object shapes: algebraic
// invariants that must hold exactly (linearity, symmetry, scaling) or
// statistically (estimator behavior), complementing the per-module unit
// tests with broad parameter coverage.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_pool.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 20.0 - 10.0;
  return out;
}

constexpr double kPGrid[] = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2,
                             1.4, 1.6, 1.8, 2.0};

/// Exact Lp distance: absolute homogeneity d(a*x, a*y) = |a| d(x, y).
class LpHomogeneityTest : public ::testing::TestWithParam<double> {};

TEST_P(LpHomogeneityTest, ScalingBothArgumentsScalesTheDistance) {
  const double p = GetParam();
  const table::Matrix x = RandomTable(6, 6, 1);
  const table::Matrix y = RandomTable(6, 6, 2);
  const double base = LpDistance(x.View(), y.View(), p);
  for (double a : {0.5, 2.0, -3.0}) {
    table::Matrix ax(6, 6), ay(6, 6);
    for (size_t i = 0; i < x.Values().size(); ++i) {
      ax.Values()[i] = a * x.Values()[i];
      ay.Values()[i] = a * y.Values()[i];
    }
    EXPECT_NEAR(LpDistance(ax.View(), ay.View(), p), std::fabs(a) * base,
                1e-9 * std::fabs(a) * base)
        << "p=" << p << " a=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Ps, LpHomogeneityTest, ::testing::ValuesIn(kPGrid));

/// Exact Lp distance: translation invariance d(x + c, y + c) = d(x, y).
class LpTranslationTest : public ::testing::TestWithParam<double> {};

TEST_P(LpTranslationTest, AddingAConstantTableChangesNothing) {
  const double p = GetParam();
  const table::Matrix x = RandomTable(5, 7, 3);
  const table::Matrix y = RandomTable(5, 7, 4);
  const table::Matrix shift = RandomTable(5, 7, 5);
  table::Matrix xs(5, 7), ys(5, 7);
  for (size_t i = 0; i < x.Values().size(); ++i) {
    xs.Values()[i] = x.Values()[i] + shift.Values()[i];
    ys.Values()[i] = y.Values()[i] + shift.Values()[i];
  }
  EXPECT_NEAR(LpDistance(xs.View(), ys.View(), p),
              LpDistance(x.View(), y.View(), p), 1e-8)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, LpTranslationTest, ::testing::ValuesIn(kPGrid));

/// Sketch estimates inherit homogeneity *exactly* (not just statistically):
/// sketches are linear, the median of |a * v| is |a| * median |v|, and the
/// L2 norm scales the same way.
class EstimatorHomogeneityTest : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorHomogeneityTest, EstimateScalesExactlyWithTheData) {
  const double p = GetParam();
  SketchParams params{.p = p, .k = 32, .seed = 77};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const table::Matrix x = RandomTable(4, 4, 6);
  const table::Matrix y = RandomTable(4, 4, 7);
  const double base = estimator->Estimate(sketcher->SketchOf(x.View()),
                                          sketcher->SketchOf(y.View()));
  const double a = 7.25;
  table::Matrix ax(4, 4), ay(4, 4);
  for (size_t i = 0; i < x.Values().size(); ++i) {
    ax.Values()[i] = a * x.Values()[i];
    ay.Values()[i] = a * y.Values()[i];
  }
  const double scaled = estimator->Estimate(sketcher->SketchOf(ax.View()),
                                            sketcher->SketchOf(ay.View()));
  EXPECT_NEAR(scaled, a * base, 1e-9 * a * base) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, EstimatorHomogeneityTest,
                         ::testing::ValuesIn(kPGrid));

/// Estimator symmetry and identity across the grid.
class EstimatorAxiomsTest : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorAxiomsTest, SymmetricAndZeroOnIdentical) {
  const double p = GetParam();
  SketchParams params{.p = p, .k = 48, .seed = 13};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const table::Matrix x = RandomTable(5, 5, 8);
  const table::Matrix y = RandomTable(5, 5, 9);
  const Sketch sx = sketcher->SketchOf(x.View());
  const Sketch sy = sketcher->SketchOf(y.View());
  EXPECT_DOUBLE_EQ(estimator->Estimate(sx, sy), estimator->Estimate(sy, sx))
      << "p=" << p;
  EXPECT_DOUBLE_EQ(estimator->Estimate(sx, sx), 0.0) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, EstimatorAxiomsTest,
                         ::testing::ValuesIn(kPGrid));

/// Sketch shape-independence: the sketch of an object depends only on its
/// linearized content and shape key, not on where it sits in a parent
/// table.
class SketchLocationInvarianceTest : public ::testing::TestWithParam<double> {
};

TEST_P(SketchLocationInvarianceTest, WindowsWithEqualContentSketchEqually) {
  const double p = GetParam();
  SketchParams params{.p = p, .k = 16, .seed = 5};
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  // Build a table where two disjoint windows hold identical content.
  table::Matrix parent(8, 12);
  const table::Matrix content = RandomTable(4, 4, 10);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      parent(r, c) = content(r, c);           // window A at (0, 0)
      parent(r + 4, c + 8) = content(r, c);   // window B at (4, 8)
    }
  }
  const Sketch a = sketcher->SketchOf(parent.Window(0, 0, 4, 4));
  const Sketch b = sketcher->SketchOf(parent.Window(4, 8, 4, 4));
  EXPECT_EQ(a.values, b.values) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, SketchLocationInvarianceTest,
                         ::testing::ValuesIn(kPGrid));

/// Compound-sketch queries across a grid of rectangle shapes: Definition 4
/// must hold structurally for every (height, width) in range.
struct RectCase {
  size_t rows, cols;
};

class CompoundStructureTest : public ::testing::TestWithParam<RectCase> {};

TEST_P(CompoundStructureTest, FourCornerSumForEveryShape) {
  const RectCase rect = GetParam();
  const table::Matrix data = RandomTable(32, 32, 21);
  SketchParams params{.p = 1.0, .k = 4, .seed = 3};
  PoolOptions options;
  options.log2_min_rows = 2;
  options.log2_min_cols = 2;
  auto pool = SketchPool::Build(data, params, options);
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());

  const size_t row = 3, col = 2;
  auto compound = pool->Query(row, col, rect.rows, rect.cols);
  ASSERT_TRUE(compound.ok()) << rect.rows << "x" << rect.cols;

  auto largest_pow2 = [](size_t n) {
    size_t p2 = 1;
    while ((p2 << 1) <= n) p2 <<= 1;
    return p2;
  };
  const size_t a = largest_pow2(rect.rows);
  const size_t b = largest_pow2(rect.cols);
  Sketch expected = sketcher->SketchOf(data.Window(row, col, a, b));
  expected.Add(
      sketcher->SketchOf(data.Window(row + rect.rows - a, col, a, b)));
  expected.Add(
      sketcher->SketchOf(data.Window(row, col + rect.cols - b, a, b)));
  expected.Add(sketcher->SketchOf(
      data.Window(row + rect.rows - a, col + rect.cols - b, a, b)));
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(compound->values[i], expected.values[i], 1e-7)
        << rect.rows << "x" << rect.cols << " component " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompoundStructureTest,
    ::testing::Values(RectCase{4, 4}, RectCase{4, 7}, RectCase{5, 4},
                      RectCase{5, 9}, RectCase{7, 7}, RectCase{8, 15},
                      RectCase{9, 6}, RectCase{15, 15}, RectCase{16, 21},
                      RectCase{21, 16}, RectCase{27, 27}));

/// Estimator monotonicity in the data: moving y farther from x along a ray
/// increases the estimate (exact for the median/L2 of scaled differences).
class EstimatorMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorMonotonicityTest, EstimateGrowsAlongARay) {
  const double p = GetParam();
  SketchParams params{.p = p, .k = 64, .seed = 55};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());
  const table::Matrix x = RandomTable(4, 4, 30);
  const table::Matrix direction = RandomTable(4, 4, 31);
  double previous = 0.0;
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    table::Matrix y(4, 4);
    for (size_t i = 0; i < x.Values().size(); ++i) {
      y.Values()[i] = x.Values()[i] + t * direction.Values()[i];
    }
    const double estimate = estimator->Estimate(
        sketcher->SketchOf(x.View()), sketcher->SketchOf(y.View()));
    EXPECT_GT(estimate, previous) << "p=" << p << " t=" << t;
    previous = estimate;
  }
}

INSTANTIATE_TEST_SUITE_P(Ps, EstimatorMonotonicityTest,
                         ::testing::ValuesIn(kPGrid));

}  // namespace
}  // namespace tabsketch::core
