#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "core/estimator.h"
#include "core/knn.h"
#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "core/sketch_cache.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "serve/query_engine.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::serve {
namespace {

using core::Sketch;

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble();
  return out;
}

TEST(ParseBatchTest, ParsesRequestsCommentsAndBlanks) {
  std::istringstream in(
      "# a comment line\n"
      "distance 0 5\n"
      "\n"
      "knn 3 4   # trailing comment\n"
      "   distance 2 2\n");
  auto batch = ParseBatch(in);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_EQ((*batch)[0],
            (QueryRequest{QueryRequest::Kind::kDistance, 0, 5, 0}));
  EXPECT_EQ((*batch)[1], (QueryRequest{QueryRequest::Kind::kKnn, 3, 0, 4}));
  EXPECT_EQ((*batch)[2],
            (QueryRequest{QueryRequest::Kind::kDistance, 2, 2, 0}));
}

TEST(ParseBatchTest, CrlfBatchesParseIdenticallyToLf) {
  // Windows-authored batch files terminate lines with \r\n; std::getline
  // leaves the \r glued to the last token, which used to fail from_chars.
  std::istringstream lf(
      "# comment\n"
      "distance 0 5\n"
      "knn 3 4\n"
      "\n"
      "distance 2 2\n");
  std::istringstream crlf(
      "# comment\r\n"
      "distance 0 5\r\n"
      "knn 3 4\r\n"
      "\r\n"
      "distance 2 2\r\n");
  auto from_lf = ParseBatch(lf);
  auto from_crlf = ParseBatch(crlf);
  ASSERT_TRUE(from_lf.ok()) << from_lf.status().ToString();
  ASSERT_TRUE(from_crlf.ok()) << from_crlf.status().ToString();
  EXPECT_EQ(*from_crlf, *from_lf);
}

TEST(ParseBatchTest, FinalLineWithBareCarriageReturnAndNoNewlineParses) {
  // The worst case: a CRLF file whose final line lacks the \n, so getline
  // returns "distance 0 5\r" as the last chunk.
  std::istringstream in("knn 3 4\r\ndistance 0 5\r");
  auto batch = ParseBatch(in);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[1],
            (QueryRequest{QueryRequest::Kind::kDistance, 0, 5, 0}));
}

TEST(ParseBatchTest, ParseBatchLineSkipsBlanksAndStripsCr) {
  auto blank = ParseBatchLine("   \r", 1);
  ASSERT_TRUE(blank.ok());
  EXPECT_FALSE(blank->has_value());
  auto comment = ParseBatchLine("# note\r", 2);
  ASSERT_TRUE(comment.ok());
  EXPECT_FALSE(comment->has_value());
  auto request = ParseBatchLine("knn 7 2\r", 3);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  ASSERT_TRUE(request->has_value());
  EXPECT_EQ(**request, (QueryRequest{QueryRequest::Kind::kKnn, 7, 0, 2}));
  auto bad = ParseBatchLine("knn 7\r", 9);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 9"), std::string::npos);
}

TEST(ParseBatchTest, RejectsMalformedLinesWithLineNumber) {
  {
    std::istringstream in("distance 0 5\nfrobnicate 1 2\n");
    auto batch = ParseBatch(in);
    ASSERT_FALSE(batch.ok());
    EXPECT_NE(batch.status().ToString().find("line 2"), std::string::npos);
  }
  {
    std::istringstream in("knn 3\n");
    EXPECT_FALSE(ParseBatch(in).ok()) << "missing argument";
  }
  {
    std::istringstream in("distance 0 5 9\n");
    EXPECT_FALSE(ParseBatch(in).ok()) << "trailing token";
  }
  {
    std::istringstream in("distance 0 -5\n");
    EXPECT_FALSE(ParseBatch(in).ok()) << "negative index";
  }
  {
    std::istringstream in("knn 3 four\n");
    EXPECT_FALSE(ParseBatch(in).ok()) << "non-numeric k";
  }
}

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest()
      : data_(RandomTable(24, 24, 9)),
        grid_(*table::TileGrid::Create(&data_, 6, 6)),
        sketcher_(
            core::Sketcher::Create({.p = 1.0, .k = 64, .seed = 5}).value()),
        estimator_(
            core::DistanceEstimator::Create({.p = 1.0, .k = 64, .seed = 5})
                .value()),
        cache_(&sketcher_, &grid_) {}

  std::vector<QueryRequest> MixedBatch() const {
    std::vector<QueryRequest> batch;
    const size_t n = grid_.num_tiles();
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(
          QueryRequest{QueryRequest::Kind::kDistance, i, (i + 3) % n, 0});
      batch.push_back(QueryRequest{QueryRequest::Kind::kKnn, i, 0, 3});
    }
    return batch;
  }

  table::Matrix data_;
  table::TileGrid grid_;
  core::Sketcher sketcher_;
  core::DistanceEstimator estimator_;
  core::OnDemandSketchCache cache_;
};

TEST_F(QueryEngineTest, DistanceMatchesEstimatorOnSketches) {
  QueryEngine engine(&grid_, &cache_, &estimator_, {});
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kDistance, 2, 7, 0}};
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);

  const double expected = estimator_.Estimate(
      sketcher_.SketchOf(grid_.Tile(2)), sketcher_.SketchOf(grid_.Tile(7)));
  std::ostringstream line;
  line.precision(kAnswerPrecision);
  line << "distance 2 7 = " << expected;
  EXPECT_EQ((*results)[0], line.str());
}

TEST_F(QueryEngineTest, AnswersRoundTripAtFullDoublePrecision) {
  // The printed distance must parse back to the exact binary64 estimate
  // (max_digits10 formatting), not a 6-digit truncation.
  QueryEngine engine(&grid_, &cache_, &estimator_, {});
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kDistance, 2, 7, 0}};
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  const double expected = estimator_.Estimate(
      sketcher_.SketchOf(grid_.Tile(2)), sketcher_.SketchOf(grid_.Tile(7)));
  const std::string& line = (*results)[0];
  const std::string printed = line.substr(line.rfind(" = ") + 3);
  EXPECT_EQ(std::stod(printed), expected);
}

TEST_F(QueryEngineTest, KnnAgreesWithTopKBySketch) {
  QueryEngine engine(&grid_, &cache_, &estimator_, {});
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kKnn, 4, 0, 3}};
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  const std::vector<Sketch> sketches = SketchAllTiles(sketcher_, grid_);
  const std::vector<core::Neighbor> expected =
      core::TopKBySketch(sketches[4], sketches, estimator_, 3, 4);
  std::ostringstream line;
  line.precision(kAnswerPrecision);
  line << "knn 4 3 =";
  for (const core::Neighbor& neighbor : expected) {
    line << " " << neighbor.index << ":" << neighbor.distance;
  }
  EXPECT_EQ((*results)[0], line.str());
}

TEST_F(QueryEngineTest, RefinedKnnWithFullCandidatesMatchesTopKExact) {
  // With the candidate set widened to the whole corpus, filter-and-refine is
  // exhaustive exact search: results must equal TopKExact, distances and all.
  const size_t n = grid_.num_tiles();
  QueryEngineOptions options;
  options.refine = true;
  options.candidates = n - 1;
  QueryEngine engine(&grid_, &cache_, &estimator_, options);
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kKnn, 6, 0, 4}};
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  const std::vector<core::Neighbor> expected =
      core::TopKExact(grid_, 1.0, 6, 4);
  std::ostringstream line;
  line.precision(kAnswerPrecision);
  line << "knn 6 4 =";
  for (const core::Neighbor& neighbor : expected) {
    line << " " << neighbor.index << ":" << neighbor.distance;
  }
  EXPECT_EQ((*results)[0], line.str());
}

TEST_F(QueryEngineTest, IdenticalAcrossThreadsAndCachePolicies) {
  const std::vector<QueryRequest> batch = MixedBatch();
  QueryEngine reference_engine(&grid_, &cache_, &estimator_, {});
  auto reference = reference_engine.Run(batch);
  ASSERT_TRUE(reference.ok());

  // Every cache policy, including an evict-on-every-lookup LRU budget, and
  // every thread count must reproduce the reference bytes exactly.
  core::LruSketchCache::Options tiny;
  tiny.capacity_bytes = 1;
  tiny.shards = 2;
  std::vector<std::unique_ptr<core::TileSketchCache>> caches;
  caches.push_back(
      std::make_unique<core::UncachedSketchSource>(&sketcher_, &grid_));
  caches.push_back(
      std::make_unique<core::LruSketchCache>(&sketcher_, &grid_, tiny));
  caches.push_back(
      std::make_unique<core::FixedSketchSource>(
          SketchAllTiles(sketcher_, grid_)));
  for (const auto& cache : caches) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      QueryEngineOptions options;
      options.threads = threads;
      QueryEngine engine(&grid_, cache.get(), &estimator_, options);
      auto results = engine.Run(batch);
      ASSERT_TRUE(results.ok());
      EXPECT_EQ(*results, *reference) << "threads=" << threads;
    }
  }
}

TEST_F(QueryEngineTest, ValidatesRequestsUpFront) {
  QueryEngine engine(&grid_, &cache_, &estimator_, {});
  const size_t n = grid_.num_tiles();
  EXPECT_FALSE(
      engine
          .Run(std::vector<QueryRequest>{
              QueryRequest{QueryRequest::Kind::kDistance, 0, n, 0}})
          .ok())
      << "distance tile out of range";
  EXPECT_FALSE(engine
                   .Run(std::vector<QueryRequest>{
                       QueryRequest{QueryRequest::Kind::kKnn, n, 0, 1}})
                   .ok())
      << "knn tile out of range";
  EXPECT_FALSE(engine
                   .Run(std::vector<QueryRequest>{
                       QueryRequest{QueryRequest::Kind::kKnn, 0, 0, 0}})
                   .ok())
      << "k = 0";
  EXPECT_FALSE(engine
                   .Run(std::vector<QueryRequest>{
                       QueryRequest{QueryRequest::Kind::kKnn, 0, 0, n}})
                   .ok())
      << "k > tiles - 1";
}

TEST_F(QueryEngineTest, RefineWithoutGridIsRejected) {
  QueryEngineOptions options;
  options.refine = true;
  QueryEngine engine(nullptr, &cache_, &estimator_, options);
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kKnn, 0, 0, 2}};
  EXPECT_FALSE(engine.Run(batch).ok());
}

TEST_F(QueryEngineTest, SketchOnlyServingWorksWithoutGrid) {
  // A FixedSketchSource (e.g. a sketch set read from disk) can serve
  // unrefined batches with no table data at all.
  core::FixedSketchSource source(SketchAllTiles(sketcher_, grid_));
  QueryEngine engine(nullptr, &source, &estimator_, {});
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kDistance, 1, 2, 0},
      QueryRequest{QueryRequest::Kind::kKnn, 0, 0, 2}};
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results->size(), 2u);
}

// ---------------------------------------------------------------------------
// Quantized filter-refine: the tentpole guarantee is that --quant never
// changes a single output byte, across widths, thread counts, cache
// policies, refine, and NaN-poisoned data.

TEST_F(QueryEngineTest, QuantIsByteIdenticalToOffEverywhere) {
  const std::vector<QueryRequest> batch = MixedBatch();
  QueryEngine reference_engine(&grid_, &cache_, &estimator_, {});
  auto reference = reference_engine.Run(batch);
  ASSERT_TRUE(reference.ok());

  const core::SketchParams params{.p = 1.0, .k = 64, .seed = 5};
  core::LruSketchCache::Options tiny;
  tiny.capacity_bytes = 1;
  core::LruSketchCache lru(&sketcher_, &grid_, tiny);
  for (core::QuantKind kind :
       {core::QuantKind::kInt8, core::QuantKind::kInt16}) {
    auto pool = core::QuantizedCodePool::Build(&cache_, kind, params,
                                               grid_.tile_rows(),
                                               grid_.tile_cols());
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    for (core::TileSketchCache* cache :
         {static_cast<core::TileSketchCache*>(&cache_),
          static_cast<core::TileSketchCache*>(&lru)}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        QueryEngineOptions options;
        options.threads = threads;
        options.quant = kind;
        QueryEngine engine(&grid_, cache, &estimator_, options, &*pool);
        auto results = engine.Run(batch);
        ASSERT_TRUE(results.ok()) << results.status().ToString();
        EXPECT_EQ(*results, *reference)
            << core::QuantKindName(kind) << " threads=" << threads;
      }
    }
  }
}

TEST_F(QueryEngineTest, QuantRefinedKnnIsByteIdenticalToOff) {
  const std::vector<QueryRequest> batch = MixedBatch();
  QueryEngineOptions reference_options;
  reference_options.refine = true;
  QueryEngine reference_engine(&grid_, &cache_, &estimator_,
                               reference_options);
  auto reference = reference_engine.Run(batch);
  ASSERT_TRUE(reference.ok());

  const core::SketchParams params{.p = 1.0, .k = 64, .seed = 5};
  auto pool = core::QuantizedCodePool::Build(&cache_, core::QuantKind::kInt8,
                                             params, grid_.tile_rows(),
                                             grid_.tile_cols());
  ASSERT_TRUE(pool.ok());
  QueryEngineOptions options;
  options.refine = true;
  options.quant = core::QuantKind::kInt8;
  QueryEngine engine(&grid_, &cache_, &estimator_, options, &*pool);
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(*results, *reference);
}

TEST_F(QueryEngineTest, QuantHandlesNaNDataIdentically) {
  // Poison two tiles so their sketches go non-finite: the code tier flags
  // them unusable (NaN code distances, always kept as candidates) and the
  // answers must still match the unquantized engine byte for byte.
  table::Matrix poisoned = data_;
  poisoned.Row(0)[0] = std::numeric_limits<double>::quiet_NaN();
  poisoned.Row(7)[13] = std::numeric_limits<double>::quiet_NaN();
  auto grid = table::TileGrid::Create(&poisoned, 6, 6);
  ASSERT_TRUE(grid.ok());
  core::OnDemandSketchCache cache(&sketcher_, &*grid);
  const std::vector<QueryRequest> batch = MixedBatch();
  QueryEngine reference_engine(&*grid, &cache, &estimator_, {});
  auto reference = reference_engine.Run(batch);
  ASSERT_TRUE(reference.ok());

  const core::SketchParams params{.p = 1.0, .k = 64, .seed = 5};
  auto pool = core::QuantizedCodePool::Build(&cache, core::QuantKind::kInt8,
                                             params, grid->tile_rows(),
                                             grid->tile_cols());
  ASSERT_TRUE(pool.ok());
  EXPECT_FALSE(pool->tile_usable(0)) << "NaN tile must be flagged";
  QueryEngineOptions options;
  options.quant = core::QuantKind::kInt8;
  QueryEngine engine(&*grid, &cache, &estimator_, options, &*pool);
  auto results = engine.Run(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(*results, *reference);
}

TEST_F(QueryEngineTest, QuantValidatesPoolWiring) {
  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kKnn, 0, 0, 2}};
  const core::SketchParams params{.p = 1.0, .k = 64, .seed = 5};

  // Quant requested but no pool attached.
  QueryEngineOptions options;
  options.quant = core::QuantKind::kInt8;
  QueryEngine no_pool(&grid_, &cache_, &estimator_, options);
  EXPECT_FALSE(no_pool.Run(batch).ok());

  // Pool width disagrees with the requested kind.
  auto pool16 = core::QuantizedCodePool::Build(&cache_, core::QuantKind::kInt16,
                                               params, grid_.tile_rows(),
                                               grid_.tile_cols());
  ASSERT_TRUE(pool16.ok());
  QueryEngine mismatched(&grid_, &cache_, &estimator_, options, &*pool16);
  EXPECT_FALSE(mismatched.Run(batch).ok());

  // Pool built over a different tile count.
  table::Matrix small = RandomTable(12, 12, 10);
  auto small_grid = table::TileGrid::Create(&small, 6, 6);
  ASSERT_TRUE(small_grid.ok());
  core::OnDemandSketchCache small_cache(&sketcher_, &*small_grid);
  auto small_pool = core::QuantizedCodePool::Build(
      &small_cache, core::QuantKind::kInt8, params, 6, 6);
  ASSERT_TRUE(small_pool.ok());
  QueryEngine wrong_count(&grid_, &cache_, &estimator_, options, &*small_pool);
  EXPECT_FALSE(wrong_count.Run(batch).ok());
}

}  // namespace
}  // namespace tabsketch::serve
