#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "core/sketch_cache.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"
#include "util/parallel.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble();
  return out;
}

constexpr size_t kSketchK = 8;

class LruSketchCacheTest : public ::testing::Test {
 protected:
  LruSketchCacheTest()
      : data_(RandomTable(16, 16, 3)),
        grid_(*table::TileGrid::Create(&data_, 4, 4)),
        sketcher_(
            Sketcher::Create({.p = 1.0, .k = kSketchK, .seed = 77}).value()) {}

  /// A single-shard cache holding exactly `entries` entries, so eviction
  /// order and byte math are fully predictable.
  LruSketchCache MakeCache(size_t entries) {
    LruSketchCache::Options options;
    options.capacity_bytes = LruSketchCache::EntryBytes(kSketchK) * entries;
    options.shards = 1;
    return LruSketchCache(&sketcher_, &grid_, options);
  }

  table::Matrix data_;
  table::TileGrid grid_;
  Sketcher sketcher_;
};

TEST_F(LruSketchCacheTest, HitMissAccounting) {
  LruSketchCache cache = MakeCache(4);
  EXPECT_EQ(cache.num_tiles(), grid_.num_tiles());
  EXPECT_EQ(cache.computed(), 0u);
  cache.Get(3);
  EXPECT_EQ(cache.computed(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.Get(3);
  EXPECT_EQ(cache.computed(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  cache.Get(0);
  EXPECT_EQ(cache.computed(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST_F(LruSketchCacheTest, LostInsertRaceIsCountedSeparately) {
  // Deterministic two-thread insert race on the same absent tile: the first
  // thread to finish computing parks in the compute_hook until the second
  // has computed AND inserted, so the parked thread is guaranteed to lose
  // the race when it re-locks the shard.
  std::promise<void> winner_inserted;
  std::shared_future<void> winner_done = winner_inserted.get_future().share();
  std::atomic<int> computes{0};
  LruSketchCache::Options options;
  options.capacity_bytes = LruSketchCache::EntryBytes(kSketchK) * 4;
  options.shards = 1;
  options.compute_hook = [&](size_t) {
    if (computes.fetch_add(1) == 0) winner_done.wait();
  };
  LruSketchCache cache(&sketcher_, &grid_, options);

  std::shared_ptr<const Sketch> loser_sketch;
  std::thread loser([&] { loser_sketch = cache.Get(0); });
  while (computes.load() == 0) std::this_thread::yield();
  const std::shared_ptr<const Sketch> winner_sketch = cache.Get(0);
  winner_inserted.set_value();
  loser.join();

  // Both lookups were misses and both computed (computed() == 2), but only
  // one insert was retained: computed() == misses_retained + races(), i.e.
  // 2 == 1 + 1. The loser is served the winner's retained entry, so the
  // values are identical either way (sketches are deterministic) and it is
  // NOT a hit.
  EXPECT_EQ(cache.computed(), 2u);
  EXPECT_EQ(cache.races(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  ASSERT_NE(loser_sketch, nullptr);
  EXPECT_EQ(loser_sketch->values, winner_sketch->values);
  // The loser was handed the retained entry itself, not its own discarded
  // compute.
  EXPECT_EQ(loser_sketch.get(), winner_sketch.get());

  // A subsequent lookup is a plain hit; no race counted.
  cache.Get(0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.races(), 1u);
}

TEST_F(LruSketchCacheTest, ByteBudgetEvictionMath) {
  // Room for exactly 2 entries: after inserting 3 distinct tiles the
  // least-recently-used one must be gone, and residency must equal exactly
  // two entries' worth of bytes at all times after the first insert settles.
  const size_t entry = LruSketchCache::EntryBytes(kSketchK);
  LruSketchCache cache = MakeCache(2);
  EXPECT_EQ(cache.capacity_bytes(), 2 * entry);

  cache.Get(0);
  EXPECT_EQ(cache.bytes_used(), entry);
  cache.Get(1);
  EXPECT_EQ(cache.bytes_used(), 2 * entry);
  EXPECT_EQ(cache.evictions(), 0u);

  cache.Get(2);  // evicts tile 0 (the coldest)
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.bytes_used(), 2 * entry);
  EXPECT_LE(cache.peak_bytes(), cache.capacity_bytes());

  // Tiles 1 and 2 are resident: both hit. Tile 0 was evicted: a miss.
  const size_t hits_before = cache.hits();
  cache.Get(1);
  cache.Get(2);
  EXPECT_EQ(cache.hits(), hits_before + 2);
  const size_t computed_before = cache.computed();
  cache.Get(0);
  EXPECT_EQ(cache.computed(), computed_before + 1);
}

TEST_F(LruSketchCacheTest, TouchOnHitProtectsHotEntry) {
  LruSketchCache cache = MakeCache(2);
  cache.Get(0);
  cache.Get(1);
  cache.Get(0);  // touch: tile 1 is now the coldest
  cache.Get(2);  // evicts tile 1, not tile 0
  const size_t computed_before = cache.computed();
  cache.Get(0);
  EXPECT_EQ(cache.computed(), computed_before) << "hot tile was evicted";
  cache.Get(1);
  EXPECT_EQ(cache.computed(), computed_before + 1);
}

TEST_F(LruSketchCacheTest, SubEntryBudgetDegradesToComputeAndRelease) {
  // A budget smaller than one entry can never retain anything: every lookup
  // computes, every insert is immediately evicted, and the returned sketch
  // stays valid because the caller holds shared ownership.
  LruSketchCache::Options options;
  options.capacity_bytes = 1;
  options.shards = 1;
  LruSketchCache cache(&sketcher_, &grid_, options);
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  for (size_t round = 0; round < 2; ++round) {
    for (size_t t = 0; t < grid_.num_tiles(); ++t) {
      const std::shared_ptr<const Sketch> sketch = cache.Get(t);
      EXPECT_EQ(sketch->values, eager[t].values) << "tile " << t;
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.computed(), 2 * grid_.num_tiles());
  EXPECT_EQ(cache.evictions(), 2 * grid_.num_tiles());
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST_F(LruSketchCacheTest, BitIdenticalToUncachedForEveryBudget) {
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  for (size_t entries : {size_t{1}, size_t{3}, size_t{16}}) {
    LruSketchCache cache = MakeCache(entries);
    for (size_t t = 0; t < grid_.num_tiles(); ++t) {
      EXPECT_EQ(cache.Get(t)->values, eager[t].values)
          << "tile " << t << " with budget for " << entries << " entries";
    }
  }
}

TEST_F(LruSketchCacheTest, EvictedEntrySurvivesThroughSharedPtr) {
  LruSketchCache cache = MakeCache(1);
  const std::shared_ptr<const Sketch> held = cache.Get(5);
  const std::vector<double> copy = held->values;
  cache.Get(6);  // evicts tile 5
  cache.Get(7);  // evicts tile 6
  EXPECT_EQ(held->values, copy);
}

TEST_F(LruSketchCacheTest, OutOfRangeTileAborts) {
  LruSketchCache cache = MakeCache(2);
  EXPECT_DEATH(cache.Get(grid_.num_tiles()), "out of");
}

TEST_F(LruSketchCacheTest, ConcurrentHammerStaysCorrectAndUnderBudget) {
  // 8 threads hammering all tiles through a cache that holds only a quarter
  // of them: values must stay bit-identical to the eager sketches, the
  // eviction churn must never push residency over budget, and the
  // hit/miss/eviction tallies must be internally consistent.
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  LruSketchCache::Options options;
  options.capacity_bytes =
      LruSketchCache::EntryBytes(kSketchK) * (grid_.num_tiles() / 4);
  options.shards = 4;
  LruSketchCache cache(&sketcher_, &grid_, options);
  const size_t tiles = grid_.num_tiles();
  constexpr size_t kRounds = 64;
  util::ParallelFor(tiles * kRounds, 8, [&](size_t i) {
    const size_t tile = (i * 7) % tiles;
    const std::shared_ptr<const Sketch> sketch = cache.Get(tile);
    EXPECT_EQ(sketch->values, eager[tile].values);
  });
  EXPECT_LE(cache.peak_bytes(), cache.capacity_bytes());
  EXPECT_GT(cache.evictions(), 0u);
  // Racing misses may compute the same tile more than once (only one copy is
  // retained), so computed + hits can exceed the call count but hits alone
  // cannot.
  EXPECT_GE(cache.computed() + cache.hits(), tiles * kRounds);
  EXPECT_LT(cache.hits(), tiles * kRounds);
}

TEST_F(LruSketchCacheTest, PolymorphicUseThroughInterface) {
  // The three cache families answer identically behind TileSketchCache.
  const std::vector<Sketch> eager = SketchAllTiles(sketcher_, grid_);
  LruSketchCache::Options options;
  options.capacity_bytes = LruSketchCache::EntryBytes(kSketchK) * 2;
  options.shards = 1;
  std::vector<std::unique_ptr<TileSketchCache>> caches;
  caches.push_back(std::make_unique<UncachedSketchSource>(&sketcher_, &grid_));
  caches.push_back(std::make_unique<OnDemandSketchCache>(&sketcher_, &grid_));
  caches.push_back(
      std::make_unique<LruSketchCache>(&sketcher_, &grid_, options));
  caches.push_back(std::make_unique<FixedSketchSource>(eager));
  for (const auto& cache : caches) {
    ASSERT_EQ(cache->num_tiles(), grid_.num_tiles());
    for (size_t t = 0; t < grid_.num_tiles(); ++t) {
      EXPECT_EQ(cache->Get(t)->values, eager[t].values) << "tile " << t;
    }
  }
}

}  // namespace
}  // namespace tabsketch::core
