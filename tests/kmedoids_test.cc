#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/exact_backend.h"
#include "cluster/kmedoids.h"
#include "cluster/sketch_backend.h"
#include "eval/confusion.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::cluster {
namespace {

struct Banded {
  table::Matrix data;
  std::vector<int> truth;
};

Banded MakeBanded(size_t bands, size_t rows_per_band, size_t cols,
                  size_t tile, uint64_t seed) {
  Banded out;
  const size_t rows = bands * rows_per_band;
  out.data = table::Matrix(rows, cols);
  rng::Xoshiro256 gen(seed);
  for (size_t r = 0; r < rows; ++r) {
    const double level = 100.0 * static_cast<double>(1 + r / rows_per_band);
    for (size_t c = 0; c < cols; ++c) out.data(r, c) = level + gen.NextDouble();
  }
  for (size_t gr = 0; gr < rows / tile; ++gr) {
    for (size_t gc = 0; gc < cols / tile; ++gc) {
      out.truth.push_back(
          static_cast<int>((gr * tile + tile / 2) / rows_per_band));
    }
  }
  return out;
}

TEST(KMedoidsTest, RejectsBadK) {
  table::Matrix data(4, 4);
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  EXPECT_FALSE(RunKMedoids(&*backend, {.k = 0}).ok());
  EXPECT_FALSE(RunKMedoids(&*backend, {.k = 5}).ok());
}

TEST(KMedoidsTest, RecoversBandsWithExactDistances) {
  Banded banded = MakeBanded(3, 8, 32, 4, 81);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMedoids(&*backend, {.k = 3, .max_iterations = 30,
                                        .seed = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_DOUBLE_EQ(
      eval::BestMatchAgreement(banded.truth, result->assignment, 3), 1.0);
}

TEST(KMedoidsTest, RecoversBandsWithSketchedDistances) {
  Banded banded = MakeBanded(3, 8, 32, 4, 82);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = SketchBackend::Create(&*grid, {.p = 1.0, .k = 64, .seed = 3},
                                       SketchMode::kPrecomputed);
  ASSERT_TRUE(backend.ok());
  // Voronoi iteration cannot split a band whose two medoids landed together,
  // so take the best of a few seeds by objective (standard protocol).
  KMedoidsResult best;
  bool have_best = false;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto result = RunKMedoids(&*backend, {.k = 3, .max_iterations = 30,
                                          .seed = seed});
    ASSERT_TRUE(result.ok());
    if (!have_best || result->objective < best.objective) {
      best = std::move(result).value();
      have_best = true;
    }
  }
  EXPECT_DOUBLE_EQ(
      eval::BestMatchAgreement(banded.truth, best.assignment, 3), 1.0);
}

TEST(KMedoidsTest, MedoidsAreMembersOfTheirClusters) {
  Banded banded = MakeBanded(2, 8, 32, 4, 83);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMedoids(&*backend, {.k = 2, .max_iterations = 30,
                                        .seed = 7});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->medoids.size(), 2u);
  std::set<size_t> distinct(result->medoids.begin(), result->medoids.end());
  EXPECT_EQ(distinct.size(), 2u);
  for (size_t m = 0; m < result->medoids.size(); ++m) {
    EXPECT_EQ(result->assignment[result->medoids[m]], static_cast<int>(m));
  }
}

TEST(KMedoidsTest, ObjectiveMatchesAssignment) {
  Banded banded = MakeBanded(2, 4, 16, 4, 84);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto result = RunKMedoids(&*backend, {.k = 2, .max_iterations = 20,
                                        .seed = 9});
  ASSERT_TRUE(result.ok());
  double expected = 0.0;
  for (size_t object = 0; object < grid->num_tiles(); ++object) {
    expected += backend->ObjectDistance(
        object, result->medoids[static_cast<size_t>(
                    result->assignment[object])]);
  }
  EXPECT_NEAR(result->objective, expected, 1e-9);
}

TEST(KMedoidsTest, DeterministicPerSeed) {
  Banded banded = MakeBanded(2, 8, 32, 4, 85);
  auto grid = table::TileGrid::Create(&banded.data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto b1 = ExactBackend::Create(&*grid, 1.0);
  auto b2 = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(b1.ok() && b2.ok());
  auto r1 = RunKMedoids(&*b1, {.k = 2, .max_iterations = 20, .seed = 11});
  auto r2 = RunKMedoids(&*b2, {.k = 2, .max_iterations = 20, .seed = 11});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->assignment, r2->assignment);
  EXPECT_EQ(r1->medoids, r2->medoids);
}

}  // namespace
}  // namespace tabsketch::cluster
